package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bat"
	"repro/internal/cl"
	"repro/internal/mem"
	"repro/internal/ops"
)

// engines returns the two Ocelot configurations of the paper's evaluation:
// the same operator host code on the CPU driver and the simulated GPU.
func engines() []*Engine {
	return []*Engine{
		New(cl.NewCPUDevice(4)),
		New(cl.NewGPUDevice(256 << 20)),
	}
}

func i32Col(name string, vals []int32) *bat.BAT {
	s := mem.AllocI32(len(vals))
	copy(s, vals)
	return bat.NewI32(name, s)
}

func f32Col(name string, vals []float32) *bat.BAT {
	s := mem.AllocF32(len(vals))
	copy(s, vals)
	return bat.NewF32(name, s)
}

func randI32(n int, max int32, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int31n(max)
	}
	return out
}

// syncedOIDs syncs a candidate result and returns its oids.
func syncedOIDs(t *testing.T, e *Engine, b *bat.BAT) []uint32 {
	t.Helper()
	if err := e.Sync(b); err != nil {
		t.Fatal(err)
	}
	return b.OIDs()
}

func TestSelectMatchesOracle(t *testing.T) {
	vals := randI32(10007, 1000, 1)
	var want []uint32
	for i, v := range vals {
		if v >= 100 && v <= 499 {
			want = append(want, uint32(i))
		}
	}
	for _, e := range engines() {
		col := i32Col("c", vals)
		got, err := e.Select(col, nil, 100, 499, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != len(want) {
			t.Fatalf("%s: count = %d, want %d", e.Name(), got.Len(), len(want))
		}
		if !got.OcelotOwned {
			t.Fatalf("%s: selection result must be Ocelot-owned before sync", e.Name())
		}
		oids := syncedOIDs(t, e, got)
		for i := range want {
			if oids[i] != want[i] {
				t.Fatalf("%s: oids[%d] = %d, want %d", e.Name(), i, oids[i], want[i])
			}
		}
	}
}

func TestSelectChainedCandidates(t *testing.T) {
	vals := randI32(5000, 100, 2)
	var want []uint32
	for i, v := range vals {
		if v >= 25 && v <= 49 {
			want = append(want, uint32(i))
		}
	}
	for _, e := range engines() {
		col := i32Col("c", vals)
		first, err := e.Select(col, nil, 0, 49, true, true)
		if err != nil {
			t.Fatal(err)
		}
		second, err := e.Select(col, first, 25, 74, true, true)
		if err != nil {
			t.Fatal(err)
		}
		oids := syncedOIDs(t, e, second)
		if len(oids) != len(want) {
			t.Fatalf("%s: chained count = %d, want %d", e.Name(), len(oids), len(want))
		}
		for i := range want {
			if oids[i] != want[i] {
				t.Fatalf("%s: chained mismatch at %d", e.Name(), i)
			}
		}
	}
}

func TestSelectF32AndEmptyInterval(t *testing.T) {
	for _, e := range engines() {
		col := f32Col("disc", []float32{0.04, 0.05, 0.06, 0.07, 0.08})
		got, err := e.Select(col, nil, 0.05, 0.07, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 3 {
			t.Fatalf("%s: f32 between = %d, want 3", e.Name(), got.Len())
		}
		icol := i32Col("i", []int32{1, 2, 3})
		empty, err := e.Select(icol, nil, 5, 4, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if empty.Len() != 0 {
			t.Fatalf("%s: empty interval selected %d rows", e.Name(), empty.Len())
		}
	}
}

func TestSelectVoidSubrangeCandidate(t *testing.T) {
	vals := randI32(1000, 10, 3)
	for _, e := range engines() {
		col := i32Col("c", vals)
		cand := bat.NewVoid("cand", 100, 200)
		got, err := e.Select(col, cand, 5, 5, true, true)
		if err != nil {
			t.Fatal(err)
		}
		oids := syncedOIDs(t, e, got)
		want := 0
		for i := 100; i < 300; i++ {
			if vals[i] == 5 {
				want++
			}
		}
		if len(oids) != want {
			t.Fatalf("%s: got %d rows, want %d", e.Name(), len(oids), want)
		}
		for _, o := range oids {
			if o < 100 || o >= 300 || vals[o] != 5 {
				t.Fatalf("%s: bad oid %d", e.Name(), o)
			}
		}
	}
}

func TestSelectOnJoinOutputList(t *testing.T) {
	// Selection over a materialised (non-bitmap) candidate list exercises
	// the gather path.
	for _, e := range engines() {
		l := i32Col("l", []int32{7, 8, 9, 7, 8})
		r := i32Col("r", []int32{7, 8})
		lres, _, err := e.Join(l, r)
		if err != nil {
			t.Fatal(err)
		}
		vals := i32Col("v", []int32{10, 20, 30, 40, 50})
		sel, err := e.Select(vals, lres, 15, 45, true, true)
		if err != nil {
			t.Fatal(err)
		}
		oids := syncedOIDs(t, e, sel)
		// join keeps rows 0,1,3,4 (values 10,20,40,50); of those 20,40 pass.
		if len(oids) != 2 {
			t.Fatalf("%s: list-cand select = %v", e.Name(), oids)
		}
		for _, o := range oids {
			if vals.I32s()[o] < 15 || vals.I32s()[o] > 45 {
				t.Fatalf("%s: oid %d fails predicate", e.Name(), o)
			}
		}
	}
}

func TestSelectCmpColumns(t *testing.T) {
	for _, e := range engines() {
		a := i32Col("a", []int32{1, 5, 3, 7, 2})
		b := i32Col("b", []int32{2, 4, 3, 9, 1})
		lt, err := e.SelectCmp(a, b, ops.Lt, nil)
		if err != nil {
			t.Fatal(err)
		}
		oids := syncedOIDs(t, e, lt)
		if len(oids) != 2 || oids[0] != 0 || oids[1] != 3 {
			t.Fatalf("%s: a<b = %v", e.Name(), oids)
		}
	}
}

func TestProjectVariants(t *testing.T) {
	for _, e := range engines() {
		col := f32Col("c", []float32{10, 20, 30, 40, 50})
		// Bitmap candidate from a selection.
		sel, err := e.Select(col, nil, 15, 45, true, true)
		if err != nil {
			t.Fatal(err)
		}
		prj, err := e.Project(sel, col)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(prj); err != nil {
			t.Fatal(err)
		}
		want := []float32{20, 30, 40}
		for i, w := range want {
			if prj.F32s()[i] != w {
				t.Fatalf("%s: bitmap project = %v", e.Name(), prj.F32s())
			}
		}
		// Dense candidate.
		dns, err := e.Project(bat.NewVoid("cand", 1, 3), col)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(dns); err != nil {
			t.Fatal(err)
		}
		if dns.F32s()[0] != 20 || dns.F32s()[2] != 40 {
			t.Fatalf("%s: dense project = %v", e.Name(), dns.F32s())
		}
		// Nil candidate (whole column).
		all, err := e.Project(nil, col)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(all); err != nil {
			t.Fatal(err)
		}
		if all.Len() != 5 || all.F32s()[4] != 50 {
			t.Fatalf("%s: full project = %v", e.Name(), all.F32s())
		}
		// Void column through oids.
		voidCol := bat.NewVoid("v", 100, 50)
		shifted, err := e.Project(bat.NewOID("cand", []uint32{3, 7}), voidCol)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(shifted); err != nil {
			t.Fatal(err)
		}
		if shifted.OIDs()[0] != 103 || shifted.OIDs()[1] != 107 {
			t.Fatalf("%s: void project = %v", e.Name(), shifted.OIDs())
		}
		// Out-of-range dense projection errors.
		if _, err := e.Project(bat.NewVoid("cand", 3, 5), col); err == nil {
			t.Fatalf("%s: out-of-range dense projection must error", e.Name())
		}
	}
}

func TestJoinWithDuplicates(t *testing.T) {
	lv := []int32{1, 2, 3, 2, 9}
	rv := []int32{2, 3, 2, 8}
	type pair struct{ lp, rp uint32 }
	var want []pair
	for i, a := range lv {
		for j, b := range rv {
			if a == b {
				want = append(want, pair{uint32(i), uint32(j)})
			}
		}
	}
	for _, e := range engines() {
		l, r := i32Col("l", lv), i32Col("r", rv)
		lo, ro, err := e.Join(l, r)
		if err != nil {
			t.Fatal(err)
		}
		los := syncedOIDs(t, e, lo)
		ros := syncedOIDs(t, e, ro)
		if len(los) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", e.Name(), len(los), len(want))
		}
		got := make([]pair, len(los))
		for i := range los {
			got[i] = pair{los[i], ros[i]}
		}
		sortPairs := func(ps []pair) {
			sort.Slice(ps, func(i, j int) bool {
				if ps[i].lp != ps[j].lp {
					return ps[i].lp < ps[j].lp
				}
				return ps[i].rp < ps[j].rp
			})
		}
		sortPairs(got)
		sortPairs(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: pair %d = %v, want %v", e.Name(), i, got[i], want[i])
			}
		}
	}
}

func TestJoinUniqueBuildSide(t *testing.T) {
	build := make([]int32, 1000)
	for i := range build {
		build[i] = int32(i * 2)
	}
	probe := randI32(5000, 2000, 4)
	var wantCount int
	for _, v := range probe {
		if v%2 == 0 && v < 2000 {
			wantCount++
		}
	}
	for _, e := range engines() {
		l, r := i32Col("probe", probe), i32Col("build", build)
		r.Props.Key = true
		lo, ro, err := e.Join(l, r)
		if err != nil {
			t.Fatal(err)
		}
		los := syncedOIDs(t, e, lo)
		ros := syncedOIDs(t, e, ro)
		if len(los) != wantCount {
			t.Fatalf("%s: unique join = %d pairs, want %d", e.Name(), len(los), wantCount)
		}
		for i := range los {
			if probe[los[i]] != build[ros[i]] {
				t.Fatalf("%s: pair %d mismatched", e.Name(), i)
			}
		}
	}
}

func TestSemiAntiJoin(t *testing.T) {
	for _, e := range engines() {
		l := i32Col("l", []int32{1, 2, 3, 2, 9})
		r := i32Col("r", []int32{2, 2, 8})
		semi, err := e.SemiJoin(l, r)
		if err != nil {
			t.Fatal(err)
		}
		so := syncedOIDs(t, e, semi)
		if len(so) != 2 || so[0] != 1 || so[1] != 3 {
			t.Fatalf("%s: semijoin = %v", e.Name(), so)
		}
		anti, err := e.AntiJoin(l, r)
		if err != nil {
			t.Fatal(err)
		}
		ao := syncedOIDs(t, e, anti)
		if len(ao) != 3 {
			t.Fatalf("%s: antijoin = %v", e.Name(), ao)
		}
	}
}

func TestHashTableCacheReuse(t *testing.T) {
	for _, e := range engines() {
		r := i32Col("base", randI32(2000, 500, 5))
		ht1, err := e.BuildHash(r)
		if err != nil {
			t.Fatal(err)
		}
		ht2, err := e.BuildHash(r)
		if err != nil {
			t.Fatal(err)
		}
		if ht1 != ht2 {
			t.Fatalf("%s: hash table of base column not cached (§5.2.6)", e.Name())
		}
		// Ocelot-owned intermediates are not cached.
		sel, err := e.Select(r, nil, 0, 100, true, true)
		if err != nil {
			t.Fatal(err)
		}
		prj, err := e.Project(sel, r)
		if err != nil {
			t.Fatal(err)
		}
		h1, err := e.BuildHash(prj)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := e.BuildHash(prj)
		if err != nil {
			t.Fatal(err)
		}
		if h1 == h2 {
			t.Fatalf("%s: intermediate hash table must not be cached", e.Name())
		}
		h1.Release()
		h2.Release()
	}
}

func TestGroupSortedPath(t *testing.T) {
	for _, e := range engines() {
		col := i32Col("c", []int32{3, 3, 5, 5, 5, 9})
		col.Props.Sorted = true
		g, n, err := e.Group(col, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("%s: ngroups = %d, want 3", e.Name(), n)
		}
		if err := e.Sync(g); err != nil {
			t.Fatal(err)
		}
		want := []int32{0, 0, 1, 1, 1, 2}
		for i, w := range want {
			if g.I32s()[i] != w {
				t.Fatalf("%s: sorted group ids = %v", e.Name(), g.I32s())
			}
		}
	}
}

func TestGroupHashedPath(t *testing.T) {
	vals := randI32(20000, 137, 6)
	distinct := map[int32]bool{}
	for _, v := range vals {
		distinct[v] = true
	}
	for _, e := range engines() {
		col := i32Col("c", vals)
		g, n, err := e.Group(col, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(distinct) {
			t.Fatalf("%s: ngroups = %d, want %d", e.Name(), n, len(distinct))
		}
		if err := e.Sync(g); err != nil {
			t.Fatal(err)
		}
		ids := g.I32s()
		byVal := map[int32]int32{}
		seen := map[int32]bool{}
		for i, v := range vals {
			if prev, ok := byVal[v]; ok {
				if ids[i] != prev {
					t.Fatalf("%s: value %d has ids %d and %d", e.Name(), v, prev, ids[i])
				}
			} else {
				byVal[v] = ids[i]
			}
			if ids[i] < 0 || int(ids[i]) >= n {
				t.Fatalf("%s: id %d out of range", e.Name(), ids[i])
			}
			seen[ids[i]] = true
		}
		if len(seen) != n {
			t.Fatalf("%s: ids not dense: %d of %d used", e.Name(), len(seen), n)
		}
	}
}

func TestGroupRefinement(t *testing.T) {
	av := []int32{1, 1, 2, 2, 1}
	bv := []int32{9, 8, 9, 9, 9}
	for _, e := range engines() {
		a, b := i32Col("a", av), i32Col("b", bv)
		g1, n1, err := e.Group(a, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		g2, n2, err := e.Group(b, g1, n1)
		if err != nil {
			t.Fatal(err)
		}
		if n2 != 3 {
			t.Fatalf("%s: refined ngroups = %d, want 3", e.Name(), n2)
		}
		if err := e.Sync(g2); err != nil {
			t.Fatal(err)
		}
		ids := g2.I32s()
		if ids[0] != ids[4] || ids[2] != ids[3] || ids[0] == ids[1] || ids[0] == ids[2] {
			t.Fatalf("%s: refined ids = %v", e.Name(), ids)
		}
	}
}

func TestAggrScalarAllKinds(t *testing.T) {
	for _, e := range engines() {
		col := f32Col("v", []float32{1, 2, 3, 4})
		sum, err := e.Aggr(ops.Sum, col, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(sum); err != nil {
			t.Fatal(err)
		}
		if sum.F32s()[0] != 10 {
			t.Fatalf("%s: sum = %v", e.Name(), sum.F32s()[0])
		}
		for _, tc := range []struct {
			kind ops.Agg
			want float32
		}{{ops.Min, 1}, {ops.Max, 4}, {ops.Avg, 2.5}} {
			got, err := e.Aggr(tc.kind, col, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Sync(got); err != nil {
				t.Fatal(err)
			}
			if got.F32s()[0] != tc.want {
				t.Fatalf("%s: %v = %v, want %v", e.Name(), tc.kind, got.F32s()[0], tc.want)
			}
		}
		cnt, err := e.Aggr(ops.Count, col, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cnt.I32s()[0] != 4 {
			t.Fatalf("%s: count = %v", e.Name(), cnt.I32s()[0])
		}
		// Integer scalar aggregates.
		icol := i32Col("iv", []int32{5, -3, 8})
		imin, err := e.Aggr(ops.Min, icol, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(imin); err != nil {
			t.Fatal(err)
		}
		if imin.I32s()[0] != -3 {
			t.Fatalf("%s: int min = %v", e.Name(), imin.I32s()[0])
		}
		iavg, err := e.Aggr(ops.Avg, icol, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(iavg); err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(iavg.F32s()[0])-10.0/3) > 1e-5 {
			t.Fatalf("%s: int avg = %v", e.Name(), iavg.F32s()[0])
		}
	}
}

func TestAggrGroupedAllKinds(t *testing.T) {
	vals := []float32{10, 20, 30, 40, 50}
	gids := []int32{0, 1, 0, 1, 2}
	for _, e := range engines() {
		v := f32Col("v", vals)
		g := i32Col("g", gids)
		sum, err := e.Aggr(ops.Sum, v, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(sum); err != nil {
			t.Fatal(err)
		}
		want := []float32{40, 60, 50}
		for i, w := range want {
			if sum.F32s()[i] != w {
				t.Fatalf("%s: grouped sum = %v", e.Name(), sum.F32s())
			}
		}
		cnt, err := e.Aggr(ops.Count, nil, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(cnt); err != nil {
			t.Fatal(err)
		}
		if cnt.I32s()[0] != 2 || cnt.I32s()[1] != 2 || cnt.I32s()[2] != 1 {
			t.Fatalf("%s: grouped count = %v", e.Name(), cnt.I32s())
		}
		avg, err := e.Aggr(ops.Avg, v, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(avg); err != nil {
			t.Fatal(err)
		}
		if avg.F32s()[0] != 20 || avg.F32s()[1] != 30 || avg.F32s()[2] != 50 {
			t.Fatalf("%s: grouped avg = %v", e.Name(), avg.F32s())
		}
		mn, err := e.Aggr(ops.Min, v, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(mn); err != nil {
			t.Fatal(err)
		}
		if mn.F32s()[0] != 10 || mn.F32s()[1] != 20 || mn.F32s()[2] != 50 {
			t.Fatalf("%s: grouped min = %v", e.Name(), mn.F32s())
		}
		imax, err := e.Aggr(ops.Max, i32Col("iv", []int32{5, 7, 1, 2, 9}), g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(imax); err != nil {
			t.Fatal(err)
		}
		if imax.I32s()[0] != 5 || imax.I32s()[1] != 7 || imax.I32s()[2] != 9 {
			t.Fatalf("%s: grouped int max = %v", e.Name(), imax.I32s())
		}
	}
}

func TestAggrErrors(t *testing.T) {
	e := New(cl.NewCPUDevice(2))
	if _, err := e.Aggr(ops.Sum, nil, nil, 0); err == nil {
		t.Fatal("sum without values must error")
	}
	if _, err := e.Aggr(ops.Count, nil, nil, 0); err == nil {
		t.Fatal("count without values and groups must error")
	}
	v := f32Col("v", []float32{1})
	g := i32Col("g", []int32{0, 1})
	if _, err := e.Aggr(ops.Sum, v, g, 2); err == nil {
		t.Fatal("misaligned grouped aggregate must error")
	}
}

func TestSortAllTypes(t *testing.T) {
	for _, e := range engines() {
		vals := randI32(30011, 1<<30, 7)
		for i := range vals {
			vals[i] -= 1 << 29 // include negatives
		}
		col := i32Col("c", vals)
		sorted, order, err := e.Sort(col)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(sorted); err != nil {
			t.Fatal(err)
		}
		oids := syncedOIDs(t, e, order)
		s := sorted.I32s()
		seen := make([]bool, len(vals))
		for i := range s {
			if i > 0 && s[i] < s[i-1] {
				t.Fatalf("%s: not sorted at %d", e.Name(), i)
			}
			o := oids[i]
			if seen[o] {
				t.Fatalf("%s: order repeats %d", e.Name(), o)
			}
			seen[o] = true
			if vals[o] != s[i] {
				t.Fatalf("%s: order does not reproduce sorted values", e.Name())
			}
		}
		// Floats too.
		fv := make([]float32, 1000)
		r := rand.New(rand.NewSource(8))
		for i := range fv {
			fv[i] = r.Float32()*200 - 100
		}
		fcol := f32Col("f", fv)
		fsorted, _, err := e.Sort(fcol)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(fsorted); err != nil {
			t.Fatal(err)
		}
		fs := fsorted.F32s()
		for i := 1; i < len(fs); i++ {
			if fs[i] < fs[i-1] {
				t.Fatalf("%s: float sort broken at %d", e.Name(), i)
			}
		}
	}
}

func TestBinopAndPromotion(t *testing.T) {
	for _, e := range engines() {
		a := f32Col("a", []float32{1, 2, 3})
		b := f32Col("b", []float32{4, 5, 6})
		mul, err := e.Binop(ops.Mul, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(mul); err != nil {
			t.Fatal(err)
		}
		if mul.F32s()[2] != 18 {
			t.Fatalf("%s: mul = %v", e.Name(), mul.F32s())
		}
		mixed, err := e.Binop(ops.Mul, i32Col("i", []int32{10, 20, 30}), b)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(mixed); err != nil {
			t.Fatal(err)
		}
		if mixed.T != bat.F32 || mixed.F32s()[0] != 40 {
			t.Fatalf("%s: mixed mul = %v", e.Name(), mixed.F32s())
		}
		oneMinus, err := e.BinopConst(ops.SubOp, a, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(oneMinus); err != nil {
			t.Fatal(err)
		}
		if oneMinus.F32s()[2] != -2 {
			t.Fatalf("%s: 1-a = %v", e.Name(), oneMinus.F32s())
		}
		years, err := e.BinopConst(ops.Div, i32Col("d", []int32{19940215}), 10000, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Sync(years); err != nil {
			t.Fatal(err)
		}
		if years.T != bat.I32 || years.I32s()[0] != 1994 {
			t.Fatalf("%s: year div = %v", e.Name(), years.I32s())
		}
	}
}

func TestOIDUnionBitmapsAndMixed(t *testing.T) {
	vals := randI32(4000, 100, 9)
	for _, e := range engines() {
		col := i32Col("c", vals)
		a, err := e.Select(col, nil, 0, 9, true, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Select(col, nil, 5, 19, true, true)
		if err != nil {
			t.Fatal(err)
		}
		u, err := e.OIDUnion(a, b)
		if err != nil {
			t.Fatal(err)
		}
		oids := syncedOIDs(t, e, u)
		want := 0
		for _, v := range vals {
			if v <= 19 {
				want++
			}
		}
		if len(oids) != want {
			t.Fatalf("%s: union = %d rows, want %d", e.Name(), len(oids), want)
		}
		for i := 1; i < len(oids); i++ {
			if oids[i] <= oids[i-1] {
				t.Fatalf("%s: union not strictly ascending", e.Name())
			}
		}
	}
}

func TestSyncHandsOwnershipBack(t *testing.T) {
	e := New(cl.NewCPUDevice(2))
	col := i32Col("c", randI32(100, 10, 10))
	sel, err := e.Select(col, nil, 0, 5, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.OcelotOwned {
		t.Fatal("result must start Ocelot-owned")
	}
	if err := e.Sync(sel); err != nil {
		t.Fatal(err)
	}
	if sel.OcelotOwned {
		t.Fatal("sync must clear ownership")
	}
	// Syncing twice is harmless.
	if err := e.Sync(sel); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseDropsDeviceState(t *testing.T) {
	e := New(cl.NewGPUDevice(64 << 20))
	col := i32Col("c", randI32(10000, 10, 11))
	sel, err := e.Select(col, nil, 0, 5, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	before := e.Device().Allocated()
	e.Release(sel)
	e.Release(col)
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if after := e.Device().Allocated(); after >= before {
		t.Fatalf("release freed nothing: %d -> %d", before, after)
	}
}

func TestBATFreeCallbackDropsCache(t *testing.T) {
	e := New(cl.NewGPUDevice(64 << 20))
	col := i32Col("victim", randI32(50000, 100, 12))
	if _, err := e.BuildHash(col); err != nil {
		t.Fatal(err)
	}
	sel, err := e.Select(col, nil, 0, 50, true, true)
	if err != nil {
		t.Fatal(err)
	}
	_ = sel
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	before := e.Device().Allocated()
	col.Free()
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if after := e.Device().Allocated(); after >= before {
		t.Fatalf("BAT free did not shrink device allocation: %d -> %d", before, after)
	}
}

// TestMemoryPressureEvictionAndOffload runs a query-sized workload on a GPU
// with tiny memory, forcing the §3.3 protocol: base-cache eviction and
// intermediate offload, with results staying correct.
func TestMemoryPressureEvictionAndOffload(t *testing.T) {
	n := 200000
	vals := randI32(n, 1000, 13)
	other := randI32(n, 50, 14)
	// Working set: 2 base columns of 800 KB each, plus bitmap, projection
	// and a hash build whose transient tables alone exceed 2 MB. 4 MiB of
	// device memory forces constant eviction/offload traffic while leaving
	// room for the largest single operator (the paper's GPU runs face the
	// same floor: the working set of one operator must fit, §5.1).
	e := New(cl.NewGPUDevice(4 << 20))
	col := i32Col("big", vals)
	oth := i32Col("other", other)

	sel, err := e.Select(col, nil, 100, 499, true, true)
	if err != nil {
		t.Fatal(err)
	}
	prj, err := e.Project(sel, oth)
	if err != nil {
		t.Fatal(err)
	}
	g, ng, err := e.Group(prj, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := e.Aggr(ops.Count, nil, g, ng)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(cnt); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range cnt.I32s() {
		total += int64(c)
	}
	want := 0
	for _, v := range vals {
		if v >= 100 && v <= 499 {
			want++
		}
	}
	if total != int64(want) {
		t.Fatalf("under memory pressure: counted %d rows, want %d", total, want)
	}
	ev, off, _ := e.Memory().Stats()
	if ev+off == 0 {
		t.Fatal("expected evictions or offloads under 2 MiB device memory")
	}
	tr, bytes := e.Device().Transfers()
	if tr == 0 || bytes == 0 {
		t.Fatal("expected PCIe traffic under memory pressure")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	e := New(cl.NewGPUDevice(1 << 20))
	pinned := i32Col("pinned", randI32(100000, 10, 15)) // 400 KB
	if _, _, err := e.Memory().ValuesForRead(pinned); err != nil {
		t.Fatal(err)
	}
	e.Memory().Pin(pinned)
	// Allocate more than remaining capacity; the pinned base must survive.
	other := i32Col("other", randI32(100000, 10, 16))
	sel, err := e.Select(other, nil, 0, 5, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(sel); err != nil {
		t.Fatal(err)
	}
	e.mm.mu.Lock()
	ent := e.mm.entries[pinned]
	ok := ent != nil && ent.buf != nil
	e.mm.mu.Unlock()
	if !ok {
		t.Fatal("pinned base BAT was evicted")
	}
	e.Memory().Unpin(pinned)
}

func TestGPUTimelineAdvancesAcrossOperators(t *testing.T) {
	e := New(cl.NewGPUDevice(256 << 20))
	col := i32Col("c", randI32(1<<20, 1000, 17))
	before := e.Device().TimelineNow()
	sel, err := e.Select(col, nil, 0, 499, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(sel); err != nil {
		t.Fatal(err)
	}
	if e.Device().TimelineNow() <= before {
		t.Fatal("virtual timeline did not advance")
	}
}
