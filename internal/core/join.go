package core

import (
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/cl"
	"repro/internal/core/kernels"
	"repro/internal/ops"
)

// Join is Ocelot's equi-join (§4.1.5): a hash join over the multi-stage
// lookup table, with the two-step count/prefix-sum/scatter procedure when
// the match cardinality is unknown, and the direct (bitmap) path when the
// build side is a key column.
func (e *Engine) Join(l, r *bat.BAT) (*bat.BAT, *bat.BAT, error) {
	// Joins whose estimated device footprint exceeds the budget go straight
	// to the partition-wise path (spill.go) instead of thrashing the Memory
	// Manager; an in-memory attempt that still hits a capacity refusal
	// retries partitioned.
	if budget, ok := e.joinBudget(); ok && r.Len() >= spillMinRows &&
		joinFootprint(l.Len(), r.Len()) > budget {
		return e.partitionedJoin(l, r, budget)
	}
	ht, err := e.BuildHash(r)
	if err != nil {
		if budget, ok := e.joinBudget(); ok && e.spillRetryable(err) {
			return e.partitionedJoin(l, r, budget)
		}
		return nil, nil, err
	}
	defer ht.Release()
	lres, rres, err := e.HashProbe(l, ht)
	if err != nil {
		if budget, ok := e.joinBudget(); ok && e.spillRetryable(err) {
			return e.partitionedJoin(l, r, budget)
		}
		return nil, nil, err
	}
	return lres, rres, nil
}

// HashProbe probes ht with l's values (the phase Fig. 5i measures).
func (e *Engine) HashProbe(l *bat.BAT, ht ops.HashTable) (*bat.BAT, *bat.BAT, error) {
	h, ok := ht.(*devHashTable)
	if !ok {
		return nil, nil, fmt.Errorf("core: foreign hash table %T", ht)
	}
	lBuf, wait, err := e.valuesOf(l)
	if err != nil {
		return nil, nil, err
	}
	wait = append(wait, h.ready)
	n := l.Len()

	if h.uniqueKeys {
		return e.probeUnique(l, lBuf, h, n, wait)
	}

	// Two-step: count, scan, write (§4.1.5).
	sc := &scratchSet{mm: e.mm}
	counts := sc.alloc(n + 1)
	offsets := sc.alloc(n + 1)
	sp := sc.alloc(spineWords(e.dev))
	total := sc.alloc(1)
	if sc.err != nil {
		sc.releaseAll()
		return nil, nil, sc.err
	}
	cev := kernels.JoinProbeCount(e.q, counts, h.state, h.keys1, h.slotGid, h.starts, lBuf, n, h.capacity, wait)
	e.mm.NoteConsumer(l, cev)
	sev := kernels.PrefixSum(e.q, offsets, counts, sp, total, n, []*cl.Event{cev})
	m32, err := e.readU32(total, []*cl.Event{sev})
	if err != nil {
		sc.releaseAll()
		return nil, nil, err
	}
	m := int(m32)

	outL, err := e.mm.Alloc((m + 1) * 4)
	if err != nil {
		sc.releaseAll()
		return nil, nil, err
	}
	outR, err := e.mm.Alloc((m + 1) * 4)
	if err != nil {
		_ = outL.Release()
		sc.releaseAll()
		return nil, nil, err
	}
	wev := kernels.JoinProbeWrite(e.q, outL, outR, offsets, h.state, h.keys1, h.slotGid, h.starts, h.rowids, lBuf, n, h.capacity, []*cl.Event{sev})
	e.mm.NoteConsumer(l, wev)
	e.releaseAfter(wev, sc.bufs...)

	lres := newOwned(l.Name+"_join", bat.OID, m)
	lres.Props.Sorted = true
	rres := newOwned("build_join", bat.OID, m)
	e.mm.BindValues(lres, outL, wev)
	e.mm.BindValues(rres, outR, wev)
	return lres, rres, nil
}

// probeUnique is the direct join path for key build sides: one kernel emits
// a match bitmap plus the matching build row per probe position; the left
// result is the materialised bitmap, the right result a gather over it.
func (e *Engine) probeUnique(l *bat.BAT, lBuf *cl.Buffer, h *devHashTable, n int, wait []*cl.Event) (*bat.BAT, *bat.BAT, error) {
	bm, err := e.mm.Alloc(bitmapWords(n) * 4)
	if err != nil {
		return nil, nil, err
	}
	rpos, err := e.mm.AllocScratch((n + 1) * 4)
	if err != nil {
		_ = bm.Release()
		return nil, nil, err
	}
	pev := kernels.JoinProbeUnique(e.q, bm, rpos, h.state, h.keys1, h.slotGid, h.starts, h.rowids, lBuf, n, h.capacity, wait)
	e.mm.NoteConsumer(l, pev)

	count, err := e.bitmapCount(bm, n, pev)
	if err != nil {
		_ = bm.Release()
		_ = rpos.Release()
		return nil, nil, err
	}
	lres := newOwned(l.Name+"_join", bat.OID, count)
	lres.Props.Sorted, lres.Props.Key = true, true
	e.mm.BindBitmap(lres, bm, n, pev)

	// Right side: gather the matched build rows at the bitmap's positions.
	lOids, lWait, err := e.materializedOIDs(lres)
	if err != nil {
		_ = rpos.Release()
		return nil, nil, err
	}
	outR, err := e.mm.Alloc((count + 1) * 4)
	if err != nil {
		_ = rpos.Release()
		return nil, nil, err
	}
	gev := kernels.Gather(e.q, outR, rpos, lOids, count, append(lWait, pev))
	e.releaseAfter(gev, rpos)
	rres := newOwned("build_join", bat.OID, count)
	e.mm.BindValues(rres, outR, gev)
	return lres, rres, nil
}

// ThetaJoin evaluates an inequality join with the two-step nested-loop
// kernels of §4.1.5: a counting pass, a prefix sum into unique write
// offsets, and the scatter pass.
func (e *Engine) ThetaJoin(l, r *bat.BAT, cmp ops.Cmp) (*bat.BAT, *bat.BAT, error) {
	if l.T != r.T {
		return nil, nil, fmt.Errorf("core: theta join type mismatch %v vs %v", l.T, r.T)
	}
	var pred func(a, b uint32) bool
	switch l.T {
	case bat.I32:
		pred = func(a, b uint32) bool { return cmpI32Bits(a, b, cmp) }
	case bat.F32:
		pred = func(a, b uint32) bool { return cmpF32Bits(a, b, cmp) }
	default:
		return nil, nil, fmt.Errorf("core: theta join on %v columns", l.T)
	}
	lBuf, lWait, err := e.valuesOf(l)
	if err != nil {
		return nil, nil, err
	}
	rBuf, rWait, err := e.valuesOf(r)
	if err != nil {
		return nil, nil, err
	}
	wait := append(lWait, rWait...)
	nl, nr := l.Len(), r.Len()

	sc := &scratchSet{mm: e.mm}
	counts := sc.alloc(nl + 1)
	offsets := sc.alloc(nl + 1)
	sp := sc.alloc(spineWords(e.dev))
	total := sc.alloc(1)
	if sc.err != nil {
		sc.releaseAll()
		return nil, nil, sc.err
	}
	cev := kernels.NestedLoopCount(e.q, counts, lBuf, rBuf, nl, nr, pred, wait)
	e.mm.NoteConsumer(l, cev)
	e.mm.NoteConsumer(r, cev)
	sev := kernels.PrefixSum(e.q, offsets, counts, sp, total, nl, []*cl.Event{cev})
	m32, err := e.readU32(total, []*cl.Event{sev})
	if err != nil {
		sc.releaseAll()
		return nil, nil, err
	}
	m := int(m32)
	outL, err := e.mm.Alloc((m + 1) * 4)
	if err != nil {
		sc.releaseAll()
		return nil, nil, err
	}
	outR, err := e.mm.Alloc((m + 1) * 4)
	if err != nil {
		_ = outL.Release()
		sc.releaseAll()
		return nil, nil, err
	}
	wev := kernels.NestedLoopWrite(e.q, outL, outR, offsets, lBuf, rBuf, nl, nr, pred, []*cl.Event{sev})
	e.releaseAfter(wev, sc.bufs...)

	lres := newOwned(l.Name+"_theta", bat.OID, m)
	lres.Props.Sorted = true
	rres := newOwned(r.Name+"_theta", bat.OID, m)
	e.mm.BindValues(lres, outL, wev)
	e.mm.BindValues(rres, outR, wev)
	return lres, rres, nil
}

func cmpI32Bits(a, b uint32, c ops.Cmp) bool {
	x, y := int32(a), int32(b)
	switch c {
	case ops.Lt:
		return x < y
	case ops.Le:
		return x <= y
	case ops.Gt:
		return x > y
	case ops.Ge:
		return x >= y
	case ops.Eq:
		return x == y
	default:
		return x != y
	}
}

func cmpF32Bits(a, b uint32, c ops.Cmp) bool {
	x, y := math.Float32frombits(a), math.Float32frombits(b)
	switch c {
	case ops.Lt:
		return x < y
	case ops.Le:
		return x <= y
	case ops.Gt:
		return x > y
	case ops.Ge:
		return x >= y
	case ops.Eq:
		return x == y
	default:
		return x != y
	}
}

// SemiJoin returns the positions of l with a match in r (EXISTS), as a
// selection bitmap over l's positions.
func (e *Engine) SemiJoin(l, r *bat.BAT) (*bat.BAT, error) {
	return e.existenceJoin(l, r, false)
}

// AntiJoin returns the positions of l without a match in r (NOT EXISTS).
func (e *Engine) AntiJoin(l, r *bat.BAT) (*bat.BAT, error) {
	return e.existenceJoin(l, r, true)
}

func (e *Engine) existenceJoin(l, r *bat.BAT, negate bool) (*bat.BAT, error) {
	if budget, ok := e.joinBudget(); ok && r.Len() >= spillMinRows &&
		joinFootprint(l.Len(), r.Len()) > budget {
		return e.partitionedExists(l, r, negate, budget)
	}
	ht, err := e.BuildHash(r)
	if err != nil {
		if budget, ok := e.joinBudget(); ok && e.spillRetryable(err) {
			return e.partitionedExists(l, r, negate, budget)
		}
		return nil, err
	}
	defer ht.Release()
	h := ht.(*devHashTable)
	lBuf, wait, err := e.valuesOf(l)
	if err != nil {
		return nil, err
	}
	wait = append(wait, h.ready)
	n := l.Len()
	bm, err := e.mm.Alloc(bitmapWords(n) * 4)
	if err != nil {
		return nil, err
	}
	ev := kernels.ExistsProbe(e.q, bm, h.state, h.keys1, h.slotGid, lBuf, n, h.capacity, negate, wait)
	e.mm.NoteConsumer(l, ev)
	name := l.Name + "_semi"
	if negate {
		name = l.Name + "_anti"
	}
	return e.finishBitmapSelection(name, bm, n, ev)
}
