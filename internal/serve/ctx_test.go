package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/cl"
	"repro/internal/hybrid"
	"repro/internal/mal"
	"repro/internal/mem"
	"repro/internal/ops"
	"repro/internal/tpch"
)

// TestCtxCancelledBeforeAdmission: an already-dead context never reaches an
// engine and reports the context's error, not ErrOverloaded.
func TestCtxCancelledBeforeAdmission(t *testing.T) {
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sv.ExecuteCtx(ctx, "dead", nil, func(s *mal.Session) *mal.Result {
		t.Error("plan must not run for a cancelled request")
		return s.Result(nil)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := sv.Stats()["dead"]; st.Dropped != 1 || st.Runs != 0 {
		t.Fatalf("stats = %+v, want 1 dropped, 0 runs", st)
	}
}

// TestCtxDeadlineWhileQueued: a request waiting behind a slow plan whose
// deadline expires is dropped at dequeue — never executed — and reports
// DeadlineExceeded, distinct from admission's ErrOverloaded.
func TestCtxDeadlineWhileQueued(t *testing.T) {
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 1, MaxQueued: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := sv.Execute("slow", nil, func(s *mal.Session) *mal.Result {
			close(started)
			<-release
			return s.Result(nil)
		})
		if err != nil {
			t.Errorf("slow query failed: %v", err)
		}
	}()
	<-started // the only slot is held

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := sv.ExecuteCtx(ctx, "queued", nil, func(s *mal.Session) *mal.Result {
		t.Error("expired request must not execute")
		return s.Result(nil)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("a dropped request must not read as overload")
	}
	close(release)
	wg.Wait()
	if st := sv.Stats()["queued"]; st.Dropped != 1 || st.Runs != 0 {
		t.Fatalf("stats = %+v, want 1 dropped, 0 runs", st)
	}
	// The slot freed by the drop is usable: a live request still runs.
	if _, err := sv.ExecuteCtx(context.Background(), "after", nil, func(s *mal.Session) *mal.Result {
		return s.Result(nil)
	}); err != nil {
		t.Fatalf("server unusable after a drop: %v", err)
	}
}

// TestDeviceLostMidPlanRetriesOnce: a GPU that dies mid-query — after
// earlier operators have adopted GPU-resident intermediates — must cost one
// transparent replay, with the retry routing around the latched-dead device
// and producing the same rows as an unharmed engine. The plan forces the
// shape the chain-level fallback cannot absorb: an intermediate owned by the
// dead card, needed by a later fragment, whose migration fails on every
// fallback target.
func TestDeviceLostMidPlanRetriesOnce(t *testing.T) {
	hyb, err := hybrid.New(4, 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	var gpu *hybrid.Dev
	for _, dev := range hyb.Devices() {
		if dev.Eng.Device().Discrete {
			gpu = dev
		}
	}
	// Pin every operator to the GPU so the mid-plan intermediate is
	// device-resident; once the device dies the pin degrades to the cost
	// model over the survivors.
	sv := New(hyb.On(gpu.Label), Options{MaxConcurrent: 2, NoCache: true})

	vals := mem.AllocI32(500_000)
	for i := range vals {
		vals[i] = int32(i % 1000)
	}
	col := bat.NewI32("c", vals)
	var want []int32
	for _, v := range vals {
		if v <= 499 {
			want = append(want, v)
		}
	}

	plan := func(s *mal.Session) *mal.Result {
		sel := s.Select(col, nil, 0, 499, true, true)
		// The scalar read is a flush boundary: sel materializes as a
		// GPU-owned intermediate, live into the rest of the plan.
		_ = s.ScalarF(s.Aggr(ops.Sum, s.Project(sel, col), nil, 0))
		// Lose the card that owns it. The guard keeps the replay clean:
		// the retry finds the device already latched dead and runs on the
		// CPU from host-resident base data.
		if gpu.Alive() {
			gpu.Eng.Device().Kill()
		}
		return s.Result([]string{"v"}, s.Project(sel, col))
	}

	res, err := sv.ExecuteCtx(context.Background(), "lost", nil, plan)
	if err != nil {
		t.Fatalf("device loss was not recovered: %v", err)
	}
	st := sv.Stats()["lost"]
	if st.Retries != 1 || st.Errors != 0 || st.Runs != 1 {
		t.Fatalf("stats = %+v, want 1 retry, 0 errors, 1 run", st)
	}
	if gpu.Alive() {
		t.Fatal("device must stay latched dead after the retry")
	}
	got := res.Cols[0].I32s()
	if len(got) != len(want) {
		t.Fatalf("retried result has %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if got := gpu.Eng.Device().Allocated(); got != 0 {
		t.Fatalf("dead device still holds %d bytes", got)
	}
}

// TestKillEachDeviceInTurn is the fault-injection acceptance sweep: on a
// 4-GPU hybrid server, each GPU in turn is fated to die a few commands into
// a join-heavy query pinned to it. Every run must complete with the same
// canonical rows as an unharmed CPU engine, the victim must latch dead, and
// the corpse must account for zero device bytes — no partial state leaks.
func TestKillEachDeviceInTurn(t *testing.T) {
	d := testDB()
	q := tpch.QueryByNum(3)
	plan := func(s *mal.Session) *mal.Result { return q.Plan(s, d) }
	ref, err := mal.RunQuery(mal.NewSession(mal.OcelotCPU.Build(engineOpts())), plan)
	if err != nil {
		t.Fatal(err)
	}

	for gi := 0; gi < 4; gi++ {
		hyb, err := hybrid.NewN(4, 512<<20, 4)
		if err != nil {
			t.Fatal(err)
		}
		var gpus []*hybrid.Dev
		for _, dev := range hyb.Devices() {
			if dev.Eng.Device().Discrete {
				gpus = append(gpus, dev)
			}
		}
		victim := gpus[gi]
		// Pin the plan to the victim so real mid-plan work is on the card
		// when it dies; after the death the pin degrades to the cost model
		// over the three survivors and the CPU.
		sv := New(hyb.On(victim.Label), Options{MaxConcurrent: 2, NoCache: true})
		victim.Eng.Device().InjectFaults(cl.FaultPlan{DieAtCommand: 3})

		res, err := sv.ExecuteCtx(context.Background(), victim.Label, nil, plan)
		if err != nil {
			t.Fatalf("%s: query did not survive the device loss: %v", victim.Label, err)
		}
		if victim.Alive() {
			t.Fatalf("%s: device must latch dead", victim.Label)
		}
		if err := canonEqualFloatTol(ref, res); err != nil {
			t.Fatalf("%s: result diverges from the unharmed reference: %v", victim.Label, err)
		}
		if got := victim.Eng.Device().Allocated(); got != 0 {
			t.Fatalf("%s: dead device still holds %d bytes", victim.Label, got)
		}
	}
}
