package serve

import (
	"testing"

	"repro/internal/mal"
	"repro/internal/tpch"
)

// TestFeedbackSurvivesSessionsAndDiesWithInvalidate: cardinality feedback
// attaches to the engine-resident plan template, so it outlives the client
// session that recorded it — later sessions replaying the same template
// place with observed sizes. Invalidate (data reloaded) must strand it:
// warm count drops to zero and the next request rebuilds cold.
func TestFeedbackSurvivesSessionsAndDiesWithInvalidate(t *testing.T) {
	d := testDB()
	o := mal.Hybrid.Build(mal.ConfigOptions{Threads: 4, GPUMemory: 512 << 20, GPUs: 2})
	sv := New(o, Options{MaxConcurrent: 2, NoCoalesce: true})
	q := tpch.QueryByNum(6)
	exec := func() {
		if _, err := sv.Execute("Q6", nil, func(s *mal.Session) *mal.Result {
			return q.Plan(s, d)
		}); err != nil {
			t.Fatal(err)
		}
	}

	if sv.FeedbackWarm() != 0 {
		t.Fatalf("fresh server reports %d warm templates", sv.FeedbackWarm())
	}
	exec()
	if sv.FeedbackWarm() != 1 {
		t.Fatalf("FeedbackWarm = %d after first execution, want 1", sv.FeedbackWarm())
	}
	exec() // a second client session replays the warm template
	if sv.FeedbackWarm() != 1 {
		t.Fatalf("FeedbackWarm = %d after replay, want still 1", sv.FeedbackWarm())
	}
	if hits, misses, _ := sv.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", hits, misses)
	}

	sv.Invalidate()
	if sv.FeedbackWarm() != 0 {
		t.Fatalf("FeedbackWarm = %d after Invalidate, want 0 (stale feedback reachable)", sv.FeedbackWarm())
	}

	exec()
	if sv.FeedbackWarm() != 1 {
		t.Fatalf("FeedbackWarm = %d after reload rebuild, want 1", sv.FeedbackWarm())
	}
	if _, misses, _ := sv.CacheStats(); misses != 2 {
		t.Fatalf("cache misses = %d after Invalidate, want 2 (rebuilt from scratch)", misses)
	}
}
