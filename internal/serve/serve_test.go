package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/hybrid"
	"repro/internal/mal"
	"repro/internal/ops"
	"repro/internal/tpch"
)

// allFive is the four paper configurations plus the §7 hybrid.
func allFive() []mal.Config {
	return []mal.Config{mal.MS, mal.MP, mal.OcelotCPU, mal.OcelotGPU, mal.Hybrid}
}

var (
	dbOnce sync.Once
	db     *tpch.DB
)

func testDB() *tpch.DB {
	dbOnce.Do(func() { db = tpch.Generate(0.005, 42) })
	return db
}

func engineOpts() mal.ConfigOptions {
	return mal.ConfigOptions{Threads: 4, GPUMemory: 512 << 20}
}

// canonEqual compares two results byte-for-byte after canonicalisation —
// concurrency on the same engine must not perturb results at all.
func canonEqual(a, b *mal.Result) error {
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca) != len(cb) {
		return fmt.Errorf("row counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if len(ca[i]) != len(cb[i]) {
			return fmt.Errorf("row %d widths differ", i)
		}
		for c := range ca[i] {
			if ca[i][c] != cb[i][c] {
				return fmt.Errorf("row %d col %d: %v vs %v", i, c, ca[i][c], cb[i][c])
			}
		}
	}
	return nil
}

// canonEqualFloatTol is canonEqual with a tiny relative tolerance on F32
// columns only: the Ocelot engines aggregate through atomic float adds
// (§4.1.7), so float reduction order — and the last bits of a sum — vary
// run to run even sequentially. Integer and oid columns must still match
// exactly.
func canonEqualFloatTol(a, b *mal.Result) error {
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca) != len(cb) {
		return fmt.Errorf("row counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		for c := range ca[i] {
			x, y := ca[i][c], cb[i][c]
			if x == y {
				continue
			}
			if a.Cols[c].T != bat.F32 {
				return fmt.Errorf("row %d col %d (exact): %v vs %v", i, c, x, y)
			}
			if math.Abs(x-y)/(math.Max(math.Abs(x), math.Abs(y))+1e-9) > 1e-5 {
				return fmt.Errorf("row %d col %d (float): %v vs %v", i, c, x, y)
			}
		}
	}
	return nil
}

// comparatorFor probes whether the engine reproduces a query bit-for-bit
// across sequential runs; deterministic engines must stay byte-identical
// under concurrency, the atomically-aggregating ones get the float-only
// tolerance.
func comparatorFor(det bool) func(a, b *mal.Result) error {
	if det {
		return canonEqual
	}
	return canonEqualFloatTol
}

// TestConcurrentSessionsByteIdenticalToSequential runs >=4 concurrent
// sessions over one shared engine per configuration (MS/MP/CPU/GPU/HYB)
// and asserts every concurrent result is byte-identical to the sequential
// execution of the same query on the same engine — up to the engine's own
// serial reproducibility: configurations whose atomic float aggregation
// already varies bit-wise between two *sequential* runs are held to exact
// integer columns plus a 1e-5 float tolerance instead. This is the
// satellite -race test: CI runs this package under the race detector.
func TestConcurrentSessionsByteIdenticalToSequential(t *testing.T) {
	d := testDB()
	// A workload slice crossing selection, projection, grouping, joins,
	// unions and a multi-fragment plan (Q15's mid-plan scalar).
	nums := []int{1, 6, 12, 15}
	if testing.Short() {
		nums = []int{1, 6}
	}
	for _, cfg := range allFive() {
		eng := cfg.Build(engineOpts())
		// Sequential references on the very engine the server will share,
		// run twice to probe whether this engine is bit-reproducible at all
		// (the atomic float aggregation of §4.1.7 is not, even serially).
		refs := map[int]*mal.Result{}
		deterministic := true
		for _, num := range nums {
			q := tpch.QueryByNum(num)
			run := func() *mal.Result {
				res, err := mal.RunQuery(mal.NewSession(eng), func(s *mal.Session) *mal.Result {
					return q.Plan(s, d)
				})
				if err != nil {
					t.Fatalf("%v Q%d sequential: %v", cfg, num, err)
				}
				return res
			}
			refs[num] = run()
			if canonEqual(run(), refs[num]) != nil {
				deterministic = false
			}
		}
		compare := comparatorFor(deterministic)

		sv := New(eng, Options{MaxConcurrent: 4})
		const clients = 4
		var wg sync.WaitGroup
		errs := make(chan error, clients*len(nums))
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range nums {
					// Stagger which query each worker starts with so
					// different plans genuinely interleave on the engine.
					q := tpch.QueryByNum(nums[(i+worker)%len(nums)])
					res, err := sv.Execute(fmt.Sprintf("Q%d", q.Num), nil, func(s *mal.Session) *mal.Result {
						return q.Plan(s, d)
					})
					if err != nil {
						errs <- fmt.Errorf("%v Q%d concurrent: %w", cfg, q.Num, err)
						return
					}
					if err := compare(res, refs[q.Num]); err != nil {
						errs <- fmt.Errorf("%v Q%d concurrent differs from sequential: %w", cfg, q.Num, err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestServeWorkloadAllConfigsAgree is the acceptance check: all 14 TPC-H
// queries, run concurrently through the serve layer (cached plans, 4
// clients), agree across all five configurations.
func TestServeWorkloadAllConfigsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload across five configurations in -short mode")
	}
	d := testDB()
	queries := tpch.Queries()

	// MS sequential reference.
	refEng := mal.MS.Build(engineOpts())
	refs := map[int]*mal.Result{}
	for _, q := range queries {
		q := q
		res, err := mal.RunQuery(mal.NewSession(refEng), func(s *mal.Session) *mal.Result {
			return q.Plan(s, d)
		})
		if err != nil {
			t.Fatalf("Q%d on MS: %v", q.Num, err)
		}
		refs[q.Num] = res
	}

	for _, cfg := range allFive() {
		// NoCoalesce: this test asserts exact cache-hit accounting over
		// concurrent duplicate requests, which single-flight would fold.
		sv := New(cfg.Build(engineOpts()), Options{MaxConcurrent: 4, NoCoalesce: true})
		type job struct {
			num int
			res *mal.Result
			err error
		}
		out := make(chan job, 2*len(queries))
		var wg sync.WaitGroup
		// Two rounds of all 14 queries across 4 workers: round two is all
		// cache hits, still compared against the reference.
		jobs := make(chan tpch.Query, 2*len(queries))
		for round := 0; round < 2; round++ {
			for _, q := range queries {
				jobs <- q
			}
		}
		close(jobs)
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := range jobs {
					q := q
					res, err := sv.Execute(fmt.Sprintf("Q%d", q.Num), nil, func(s *mal.Session) *mal.Result {
						return q.Plan(s, d)
					})
					out <- job{q.Num, res, err}
				}
			}()
		}
		wg.Wait()
		close(out)
		for j := range out {
			if j.err != nil {
				t.Fatalf("%v Q%d through serve: %v", cfg, j.num, j.err)
			}
			if err := j.res.EqualWithin(refs[j.num], 2e-3); err != nil {
				t.Fatalf("%v Q%d disagrees with MS: %v", cfg, j.num, err)
			}
		}
		// Concurrent first requests for the same key single-flight through
		// the cache: the waiters replay the winner's template and count as
		// hits, so timing still moves individual counts around; the bulk of
		// round two must in any case be served from the cache.
		hits, misses, size := sv.CacheStats()
		if size != len(queries) || hits+misses != int64(2*len(queries)) || hits < int64(len(queries))/2 {
			t.Fatalf("%v: cache stats %d hits / %d misses / %d templates, want %d templates and >=%d hits",
				cfg, hits, misses, size, len(queries), len(queries)/2)
		}
	}
}

// TestServeStatsAndCacheHits: per-query stats must count runs, rows and
// cache hits.
func TestServeStatsAndCacheHits(t *testing.T) {
	d := testDB()
	sv := New(mal.MS.Build(engineOpts()), Options{MaxConcurrent: 2})
	q := tpch.QueryByNum(6)
	for i := 0; i < 3; i++ {
		if _, err := sv.Execute("Q6", nil, func(s *mal.Session) *mal.Result {
			return q.Plan(s, d)
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := sv.Stats()["Q6"]
	if st.Runs != 3 || st.Errors != 0 || st.CacheHits != 2 || st.Rows != 3 {
		t.Fatalf("stats = %+v, want 3 runs, 2 hits, 3 rows", st)
	}
	if sv.String() == "" {
		t.Fatal("stats rendering empty")
	}
	hits, misses, size := sv.CacheStats()
	if hits != 2 || misses != 1 || size != 1 {
		t.Fatalf("cache stats = %d/%d/%d", hits, misses, size)
	}
}

// TestServeNoCacheRebuilds: with the cache disabled every request builds
// its plan.
func TestServeNoCacheRebuilds(t *testing.T) {
	d := testDB()
	sv := New(mal.MS.Build(engineOpts()), Options{MaxConcurrent: 2, NoCache: true})
	q := tpch.QueryByNum(6)
	for i := 0; i < 2; i++ {
		if _, err := sv.Execute("Q6", nil, func(s *mal.Session) *mal.Result {
			return q.Plan(s, d)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := sv.Stats()["Q6"]; st.CacheHits != 0 || st.Runs != 2 {
		t.Fatalf("stats = %+v, want 2 uncached runs", st)
	}
}

// TestAdmissionCapRejectsOverload: with one execution slot and one queue
// slot, a burst must see rejections with ErrOverloaded while admitted
// requests complete; nothing deadlocks.
func TestAdmissionCapRejectsOverload(t *testing.T) {
	// NoCoalesce: the identical burst requests must each hit admission
	// control instead of folding into one in-flight execution.
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 1, MaxQueued: 1, NoCoalesce: true})
	release := make(chan struct{})
	started := make(chan struct{})
	slow := func(s *mal.Session) *mal.Result {
		close(started)
		<-release
		return s.Result(nil)
	}
	fast := func(s *mal.Session) *mal.Result { return s.Result(nil) }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sv.Execute("slow", nil, slow); err != nil {
			t.Errorf("slow query failed: %v", err)
		}
	}()
	<-started // the slot is held

	// One request may wait; the rest of the burst must be rejected.
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sv.Execute("burst", nil, fast)
			results <- err
		}()
	}
	var rejected int
	deadline := time.After(5 * time.Second)
	for i := 0; i < 3; i++ { // at least 3 of 4 must resolve before release
		select {
		case err := <-results:
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("expected ErrOverloaded, got %v", err)
			}
			rejected++
		case <-deadline:
			t.Fatal("admission control did not reject while the slot was held")
		}
	}
	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if rejected < 3 {
		t.Fatalf("only %d rejections", rejected)
	}
	if st := sv.Stats()["burst"]; st.Rejected < 3 || st.Errors != 0 || st.Runs+st.Rejected != 4 {
		t.Fatalf("burst stats = %+v, want >=3 rejections counted apart from runs/errors", st)
	}
}

// TestAdmissionAcceptsBurstWithinCap: a burst no larger than the execution
// cap on an idle server must be admitted in full even with a tiny wait
// queue — only requests that actually have to wait count against MaxQueued.
func TestAdmissionAcceptsBurstWithinCap(t *testing.T) {
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 4, MaxQueued: 1, NoCoalesce: true})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			_, err := sv.Execute("burst", nil, func(s *mal.Session) *mal.Result {
				time.Sleep(10 * time.Millisecond) // keep the slots occupied together
				return s.Result(nil)
			})
			errs <- err
		}()
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("burst within the execution cap was rejected: %v", err)
		}
	}
}

// TestBalancedServerSpreadsSessions: a server over several engines must
// route concurrent sessions across all of them (least-in-flight with a
// round-robin tie break), keep per-engine plan caches working, and return
// results identical to a single-engine run. Invalidate must bump every
// engine's cache generation.
func TestBalancedServerSpreadsSessions(t *testing.T) {
	db := testDB()
	engines := []ops.Operators{
		mal.OcelotCPU.Build(engineOpts()),
		mal.OcelotCPU.Build(engineOpts()),
	}
	// NoCoalesce: the test counts per-engine loads and exact cache hits
	// across identical concurrent requests.
	sv := NewBalanced(engines, Options{MaxConcurrent: 4, NoCoalesce: true})
	if len(sv.Engines()) != 2 {
		t.Fatalf("server reports %d engines, want 2", len(sv.Engines()))
	}

	q := tpch.QueryByNum(6)
	plan := func(s *mal.Session) *mal.Result { return q.Plan(s, db) }
	// Warm both engines sequentially (idle round-robin alternates slots):
	// concurrent cold misses on one engine would each build independently,
	// which is documented cache behaviour but noise for this test.
	ref, err := sv.Execute("q6", nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Execute("q6", nil, plan); err != nil {
		t.Fatal(err)
	}

	const rounds = 32
	var wg sync.WaitGroup
	errs := make(chan error, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sv.Execute("q6", nil, plan)
			if err != nil {
				errs <- err
				return
			}
			errs <- canonEqual(res, ref)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	loads := sv.EngineLoads()
	var total int64
	for i, l := range loads {
		if l == 0 {
			t.Fatalf("engine %d served no sessions: loads %v", i, loads)
		}
		total += l
	}
	if total != rounds+2 {
		t.Fatalf("loads %v sum to %d, want %d", loads, total, rounds+2)
	}
	// Both engines built the plan once during the warm-up (their caches are
	// separate); every later execution replayed a template.
	hits, misses, size := sv.CacheStats()
	if misses != 2 || size != 2 {
		t.Fatalf("cache stats hits=%d misses=%d size=%d, want 2 misses / 2 resident", hits, misses, size)
	}
	if hits != rounds {
		t.Fatalf("cache hits = %d, want %d", hits, rounds)
	}

	// Invalidation bumps every engine's cache: the next run per engine is a
	// rebuild.
	sv.Invalidate()
	for i := 0; i < 2; i++ {
		if _, err := sv.Execute("q6", nil, plan); err != nil {
			t.Fatal(err)
		}
	}
	if h2, m2, _ := sv.CacheStats(); m2 != misses+2 || h2 != hits {
		t.Fatalf("invalidation did not force rebuilds: misses %d -> %d", misses, m2)
	}
}

// TestNDeviceHybridConcurrentPlacementAccounting: >=4 concurrent serve
// sessions on one shared 4-device hybrid engine (1 CPU + 3 GPUs), under
// the race detector in CI. Afterwards the engine's per-device placement
// accounting must be consistent: every recorded device label belongs to
// the device set, and the per-operator totals equal the pinned compute
// instructions the sequential plan executes times the completed runs —
// concurrency must not lose or double-count a placement.
func TestNDeviceHybridConcurrentPlacementAccounting(t *testing.T) {
	db := testDB()
	o := mal.Hybrid.Build(mal.ConfigOptions{Threads: 4, GPUMemory: 512 << 20, GPUs: 3})
	h := o.(*hybrid.Engine)
	labels := map[string]bool{}
	for _, d := range h.Devices() {
		labels[d.Label] = true
	}
	if len(labels) != 4 {
		t.Fatalf("want a 4-device engine, got %v", labels)
	}

	// One sequential run (plan cache off — replays keep the same pinned
	// instruction count, but the count is simplest to read off a fresh
	// session) to learn the per-operator pin totals of Q6.
	q := tpch.QueryByNum(6)
	plan := func(s *mal.Session) *mal.Result { return q.Plan(s, db) }
	s := mal.NewSession(o)
	ref, err := mal.RunQuery(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	perOp := map[string]int{}
	for _, in := range s.Plan() {
		if in.Device != "" {
			perOp[in.PlaceKey()]++
		}
	}
	before := h.Placements()

	const sessions, rounds = 6, 4
	sv := New(o, Options{MaxConcurrent: sessions, NoCache: true})
	var wg sync.WaitGroup
	errs := make(chan error, sessions*rounds)
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := sv.Execute("q6", nil, plan)
				if err != nil {
					errs <- err
					return
				}
				errs <- canonEqual(res, ref)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	after := h.Placements()
	for op, m := range after {
		for dev := range m {
			if !labels[dev] {
				t.Fatalf("placement recorded for unknown device %q (op %s)", dev, op)
			}
		}
	}
	for op, want := range perOp {
		got := 0
		for _, n := range after[op] {
			got += n
		}
		for _, n := range before[op] {
			got -= n
		}
		if got != want*sessions*rounds {
			t.Fatalf("op %s: %d placements across %d runs, want %d per run (%v)",
				op, got, sessions*rounds, want, after[op])
		}
	}
}
