// Package serve is the concurrent query-serving layer over the MAL
// execution stack: the piece that turns the benchmark harness into the
// server the paper assumes Ocelot lives inside (§3.1 — MonetDB serves many
// client sessions against one engine). A Server multiplexes N client plan
// executions onto one *or more* shared operator configurations: each request
// gets its own MAL session (sessions are single-threaded; engines are shared
// and thread-safe), admission is capped so a traffic burst queues instead of
// oversubscribing the devices, and completed plans are cached as rewritten
// templates (mal.PlanCache) so repeated queries skip the plan build and the
// whole rewriter pass pipeline, re-binding only their parameters.
//
// With several engines (NewBalanced) the server balances sessions across
// them by in-flight load: each admitted request runs on the engine currently
// executing the fewest plans, ties broken round-robin. Every engine keeps
// its own plan cache — the mal.PlanCache contract scopes a cache to one
// engine over one database — and Invalidate bumps all of them when base
// data is reloaded.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cl"
	"repro/internal/mal"
	"repro/internal/ops"
)

// ErrOverloaded is returned when admission control rejects a request: the
// number of waiting requests exceeds Options.MaxQueued.
var ErrOverloaded = errors.New("serve: server overloaded, request rejected by admission control")

// Options configure a Server.
type Options struct {
	// MaxConcurrent caps how many plans execute simultaneously across the
	// shared engines (the admission cap); <=0 selects 4 per engine.
	MaxConcurrent int
	// MaxQueued caps how many requests may wait for an execution slot
	// beyond the cap before new arrivals are rejected with ErrOverloaded;
	// <=0 selects 16x MaxConcurrent.
	MaxQueued int
	// Passes is the rewriter pass configuration for every plan; the zero
	// value selects mal.DefaultPasses.
	Passes *mal.Passes
	// NoCache disables the rewritten-plan caches: every request builds and
	// rewrites its plan from scratch (ablation and tests).
	NoCache bool
}

// QueryStats aggregate the executions of one named query.
type QueryStats struct {
	// Runs counts completed executions (successful or failed); Errors the
	// failed ones; CacheHits the executions served from a cached template.
	Runs, Errors, CacheHits int64
	// Rejected counts requests admission control turned away with
	// ErrOverloaded; they never executed and are not part of Runs or the
	// latency aggregates.
	Rejected int64
	// Dropped counts requests whose caller's context expired or was
	// cancelled before execution started — while waiting for a slot, or
	// already queued when the slot finally freed. Like Rejected they never
	// executed and are not part of Runs.
	Dropped int64
	// Retries counts executions re-run after a device was lost mid-plan:
	// the retry routes around the dead device, so one lost card costs one
	// replay, not a failed request.
	Retries int64
	// Rows is the total result rows returned.
	Rows int64
	// Total and Max aggregate end-to-end request latency (admission wait
	// included).
	Total, Max time.Duration
}

// engineSlot is one balanced execution target: an engine, its plan cache,
// and its load counters.
type engineSlot struct {
	o        ops.Operators
	cache    *mal.PlanCache
	inflight atomic.Int64 // plans executing right now
	served   atomic.Int64 // completed executions (observability)
}

// Server dispatches concurrent plan executions onto shared operator
// configurations.
type Server struct {
	slots  []*engineSlot
	passes mal.Passes

	sem     chan struct{}
	maxQ    int64
	waiting atomic.Int64
	rr      atomic.Int64 // round-robin tie-breaker for equal loads

	mu    sync.Mutex
	stats map[string]*QueryStats
}

// New creates a server over one shared configuration. The engine must be
// safe for concurrent sessions (all shipped configurations are); the
// server's plan cache is scoped to this engine and the data its plans read,
// per the mal.PlanCache contract.
func New(o ops.Operators, opt Options) *Server {
	return NewBalanced([]ops.Operators{o}, opt)
}

// NewBalanced creates a server balancing sessions across several engines.
// The engines should be interchangeable — same module, same base data —
// since any request may land on any of them; typically they are separate
// instances of one configuration (e.g. per-NUMA-domain hybrid engines).
// Each engine gets its own plan cache.
func NewBalanced(os []ops.Operators, opt Options) *Server {
	if len(os) == 0 {
		panic("serve: NewBalanced needs at least one engine")
	}
	if opt.MaxConcurrent <= 0 {
		opt.MaxConcurrent = 4 * len(os)
	}
	if opt.MaxQueued <= 0 {
		opt.MaxQueued = 16 * opt.MaxConcurrent
	}
	passes := mal.DefaultPasses()
	if opt.Passes != nil {
		passes = *opt.Passes
	}
	sv := &Server{
		passes: passes,
		sem:    make(chan struct{}, opt.MaxConcurrent),
		maxQ:   int64(opt.MaxQueued),
		stats:  map[string]*QueryStats{},
	}
	for _, o := range os {
		slot := &engineSlot{o: o}
		if !opt.NoCache {
			slot.cache = mal.NewPlanCache()
		}
		sv.slots = append(sv.slots, slot)
	}
	return sv
}

// Operators returns the first shared configuration (the only one for a
// single-engine server).
func (sv *Server) Operators() ops.Operators { return sv.slots[0].o }

// Engines returns every balanced configuration in slot order.
func (sv *Server) Engines() []ops.Operators {
	out := make([]ops.Operators, len(sv.slots))
	for i, s := range sv.slots {
		out[i] = s.o
	}
	return out
}

// EngineLoads returns, per engine, how many executions it has completed
// (successful or failed, like QueryStats.Runs) — the balance the dispatcher
// achieved.
func (sv *Server) EngineLoads() []int64 {
	out := make([]int64, len(sv.slots))
	for i, s := range sv.slots {
		out[i] = s.served.Load()
	}
	return out
}

// Invalidate marks the base data as replaced: every engine's plan cache
// moves to a fresh data generation (mal.PlanCache.BumpGeneration), so no
// template captured over the old data can replay. Call it after reloading a
// table the served plans read.
func (sv *Server) Invalidate() {
	for _, s := range sv.slots {
		if s.cache != nil {
			s.cache.BumpGeneration()
		}
	}
}

// pick returns the engine slot with the fewest in-flight plans, breaking
// ties round-robin so equal-load engines share work instead of the first
// one absorbing every burst.
func (sv *Server) pick() *engineSlot {
	if len(sv.slots) == 1 {
		return sv.slots[0]
	}
	start := int((sv.rr.Add(1) - 1) % int64(len(sv.slots)))
	best := sv.slots[start]
	bestLoad := best.inflight.Load()
	for i := 1; i < len(sv.slots); i++ {
		s := sv.slots[(start+i)%len(sv.slots)]
		if l := s.inflight.Load(); l < bestLoad {
			best, bestLoad = s, l
		}
	}
	return best
}

// Execute runs the named plan with the given parameter bindings, blocking
// until an execution slot is free. Admission control rejects the request
// with ErrOverloaded when too many requests are already waiting. Execute is
// safe to call from any number of goroutines.
func (sv *Server) Execute(name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	return sv.ExecuteCtx(context.Background(), name, params, plan)
}

// ExecuteCtx is Execute with a caller deadline: a request whose context
// expires or is cancelled while it waits for an execution slot — or that is
// already queued when its slot finally frees — is dropped *before* any plan
// work starts and reports the context's own error
// (context.DeadlineExceeded or context.Canceled), distinct from the
// admission-control ErrOverloaded. A plan already executing is never
// interrupted: sessions are not preemptible, so the deadline gates
// admission and dequeue, which under load is where requests spend their
// wait anyway.
func (sv *Server) ExecuteCtx(ctx context.Context, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		sv.drop(name)
		return nil, err
	}
	select {
	case sv.sem <- struct{}{}: // free execution slot: admitted immediately
	default:
		// All slots busy: join the bounded wait queue.
		if sv.waiting.Add(1) > sv.maxQ {
			sv.waiting.Add(-1)
			sv.reject(name)
			return nil, ErrOverloaded
		}
		select {
		case sv.sem <- struct{}{}:
		case <-ctx.Done():
			sv.waiting.Add(-1)
			sv.drop(name)
			return nil, ctx.Err()
		}
		sv.waiting.Add(-1)
	}
	defer func() { <-sv.sem }()
	// Dequeue gate: the slot may have freed long after the caller gave up.
	if err := ctx.Err(); err != nil {
		sv.drop(name)
		return nil, err
	}

	res, hit, err := sv.runOnce(name, params, plan)
	if err != nil && errors.Is(err, cl.ErrDeviceLost) {
		// A device died mid-plan and took the plan's intermediates with it.
		// The device is latched dead, so one replay routes around it (hybrid
		// pick/placement skip dead devices; base data lives on the host).
		sv.mu.Lock()
		st := sv.statLocked(name)
		st.Retries++
		sv.mu.Unlock()
		res, hit, err = sv.runOnce(name, params, plan)
	}
	sv.note(name, start, res, hit, err)
	return res, err
}

// runOnce picks the least-loaded engine and executes the plan on it.
func (sv *Server) runOnce(name string, params mal.Params, plan func(*mal.Session) *mal.Result) (res *mal.Result, hit bool, err error) {
	slot := sv.pick()
	slot.inflight.Add(1)
	defer slot.inflight.Add(-1)
	if slot.cache != nil {
		res, hit, err = slot.cache.Run(slot.o, name, params, sv.passes, plan)
	} else {
		s := mal.NewSession(slot.o)
		s.SetPasses(sv.passes)
		s.SetParams(params)
		res, err = mal.RunQuery(s, plan)
	}
	slot.served.Add(1)
	return res, hit, err
}

// statLocked returns (creating if needed) the named stats; sv.mu held.
func (sv *Server) statLocked(name string) *QueryStats {
	st := sv.stats[name]
	if st == nil {
		st = &QueryStats{}
		sv.stats[name] = st
	}
	return st
}

func (sv *Server) reject(name string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.statLocked(name).Rejected++
}

func (sv *Server) drop(name string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.statLocked(name).Dropped++
}

func (sv *Server) note(name string, start time.Time, res *mal.Result, hit bool, err error) {
	took := time.Since(start)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st := sv.statLocked(name)
	st.Runs++
	if err != nil {
		st.Errors++
	}
	if hit {
		st.CacheHits++
	}
	if res != nil {
		st.Rows += int64(res.Rows())
	}
	st.Total += took
	if took > st.Max {
		st.Max = took
	}
}

// CacheStats returns plan-cache hits, misses and resident templates summed
// across the engines (zeros when the caches are disabled).
func (sv *Server) CacheStats() (hits, misses int64, size int) {
	for _, s := range sv.slots {
		if s.cache == nil {
			continue
		}
		h, m, n := s.cache.Stats()
		hits += h
		misses += m
		size += n
	}
	return hits, misses, size
}

// Stats returns a copy of the per-query statistics.
func (sv *Server) Stats() map[string]QueryStats {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make(map[string]QueryStats, len(sv.stats))
	for name, st := range sv.stats {
		out[name] = *st
	}
	return out
}

// String renders the per-query statistics as an aligned table.
func (sv *Server) String() string {
	stats := sv.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %6s %6s %6s %6s %6s %6s %10s %12s %12s\n",
		"query", "runs", "errs", "rej", "drop", "retry", "hits", "rows", "avg", "max")
	for _, n := range names {
		st := stats[n]
		avg := time.Duration(0)
		if st.Runs > 0 {
			avg = st.Total / time.Duration(st.Runs)
		}
		fmt.Fprintf(&sb, "%-24s %6d %6d %6d %6d %6d %6d %10d %12v %12v\n",
			n, st.Runs, st.Errors, st.Rejected, st.Dropped, st.Retries, st.CacheHits, st.Rows,
			avg.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	hits, misses, size := sv.CacheStats()
	fmt.Fprintf(&sb, "plan cache: %d hits, %d misses, %d templates\n", hits, misses, size)
	if len(sv.slots) > 1 {
		fmt.Fprintf(&sb, "engines: %d, served %v\n", len(sv.slots), sv.EngineLoads())
	}
	return sb.String()
}
