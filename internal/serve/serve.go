// Package serve is the concurrent query-serving layer over the MAL
// execution stack: the piece that turns the benchmark harness into the
// server the paper assumes Ocelot lives inside (§3.1 — MonetDB serves many
// client sessions against one engine). A Server multiplexes N client plan
// executions onto one shared operator configuration: each request gets its
// own MAL session (sessions are single-threaded; engines are shared and
// thread-safe), admission is capped so a traffic burst queues instead of
// oversubscribing the device, and completed plans are cached as rewritten
// templates (mal.PlanCache) so repeated queries skip the plan build and the
// whole rewriter pass pipeline, re-binding only their parameters.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mal"
	"repro/internal/ops"
)

// ErrOverloaded is returned when admission control rejects a request: the
// number of waiting requests exceeds Options.MaxQueued.
var ErrOverloaded = errors.New("serve: server overloaded, request rejected by admission control")

// Options configure a Server.
type Options struct {
	// MaxConcurrent caps how many plans execute simultaneously on the
	// shared engine (the admission cap); <=0 selects 4.
	MaxConcurrent int
	// MaxQueued caps how many requests may wait for an execution slot
	// beyond the cap before new arrivals are rejected with ErrOverloaded;
	// <=0 selects 16x MaxConcurrent.
	MaxQueued int
	// Passes is the rewriter pass configuration for every plan; the zero
	// value selects mal.DefaultPasses.
	Passes *mal.Passes
	// NoCache disables the rewritten-plan cache: every request builds and
	// rewrites its plan from scratch (ablation and tests).
	NoCache bool
}

// QueryStats aggregate the executions of one named query.
type QueryStats struct {
	// Runs counts completed executions (successful or failed); Errors the
	// failed ones; CacheHits the executions served from a cached template.
	Runs, Errors, CacheHits int64
	// Rejected counts requests admission control turned away with
	// ErrOverloaded; they never executed and are not part of Runs or the
	// latency aggregates.
	Rejected int64
	// Rows is the total result rows returned.
	Rows int64
	// Total and Max aggregate end-to-end request latency (admission wait
	// included).
	Total, Max time.Duration
}

// Server dispatches concurrent plan executions onto one shared operator
// configuration.
type Server struct {
	o      ops.Operators
	passes mal.Passes
	cache  *mal.PlanCache

	sem     chan struct{}
	maxQ    int64
	waiting atomic.Int64

	mu    sync.Mutex
	stats map[string]*QueryStats
}

// New creates a server over the shared configuration o. The engine must be
// safe for concurrent sessions (all shipped configurations are); the
// server's plan cache is scoped to this engine and the data its plans read,
// per the mal.PlanCache contract.
func New(o ops.Operators, opt Options) *Server {
	if opt.MaxConcurrent <= 0 {
		opt.MaxConcurrent = 4
	}
	if opt.MaxQueued <= 0 {
		opt.MaxQueued = 16 * opt.MaxConcurrent
	}
	passes := mal.DefaultPasses()
	if opt.Passes != nil {
		passes = *opt.Passes
	}
	sv := &Server{
		o:      o,
		passes: passes,
		sem:    make(chan struct{}, opt.MaxConcurrent),
		maxQ:   int64(opt.MaxQueued),
		stats:  map[string]*QueryStats{},
	}
	if !opt.NoCache {
		sv.cache = mal.NewPlanCache()
	}
	return sv
}

// Operators returns the shared configuration.
func (sv *Server) Operators() ops.Operators { return sv.o }

// Execute runs the named plan with the given parameter bindings, blocking
// until an execution slot is free. Admission control rejects the request
// with ErrOverloaded when too many requests are already waiting. Execute is
// safe to call from any number of goroutines.
func (sv *Server) Execute(name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	start := time.Now()
	select {
	case sv.sem <- struct{}{}: // free execution slot: admitted immediately
	default:
		// All slots busy: join the bounded wait queue.
		if sv.waiting.Add(1) > sv.maxQ {
			sv.waiting.Add(-1)
			sv.reject(name)
			return nil, ErrOverloaded
		}
		sv.sem <- struct{}{}
		sv.waiting.Add(-1)
	}
	defer func() { <-sv.sem }()

	var res *mal.Result
	var hit bool
	var err error
	if sv.cache != nil {
		res, hit, err = sv.cache.Run(sv.o, name, params, sv.passes, plan)
	} else {
		s := mal.NewSession(sv.o)
		s.SetPasses(sv.passes)
		s.SetParams(params)
		res, err = mal.RunQuery(s, plan)
	}
	sv.note(name, start, res, hit, err)
	return res, err
}

func (sv *Server) reject(name string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st := sv.stats[name]
	if st == nil {
		st = &QueryStats{}
		sv.stats[name] = st
	}
	st.Rejected++
}

func (sv *Server) note(name string, start time.Time, res *mal.Result, hit bool, err error) {
	took := time.Since(start)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st := sv.stats[name]
	if st == nil {
		st = &QueryStats{}
		sv.stats[name] = st
	}
	st.Runs++
	if err != nil {
		st.Errors++
	}
	if hit {
		st.CacheHits++
	}
	if res != nil {
		st.Rows += int64(res.Rows())
	}
	st.Total += took
	if took > st.Max {
		st.Max = took
	}
}

// CacheStats returns plan-cache hits, misses and resident templates (zeros
// when the cache is disabled).
func (sv *Server) CacheStats() (hits, misses int64, size int) {
	if sv.cache == nil {
		return 0, 0, 0
	}
	return sv.cache.Stats()
}

// Stats returns a copy of the per-query statistics.
func (sv *Server) Stats() map[string]QueryStats {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make(map[string]QueryStats, len(sv.stats))
	for name, st := range sv.stats {
		out[name] = *st
	}
	return out
}

// String renders the per-query statistics as an aligned table.
func (sv *Server) String() string {
	stats := sv.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %6s %6s %6s %6s %10s %12s %12s\n",
		"query", "runs", "errs", "rej", "hits", "rows", "avg", "max")
	for _, n := range names {
		st := stats[n]
		avg := time.Duration(0)
		if st.Runs > 0 {
			avg = st.Total / time.Duration(st.Runs)
		}
		fmt.Fprintf(&sb, "%-24s %6d %6d %6d %6d %10d %12v %12v\n",
			n, st.Runs, st.Errors, st.Rejected, st.CacheHits, st.Rows,
			avg.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	hits, misses, size := sv.CacheStats()
	fmt.Fprintf(&sb, "plan cache: %d hits, %d misses, %d templates\n", hits, misses, size)
	return sb.String()
}
