// Package serve is the concurrent query-serving layer over the MAL
// execution stack: the piece that turns the benchmark harness into the
// server the paper assumes Ocelot lives inside (§3.1 — MonetDB serves many
// client sessions against one engine). A Server multiplexes N client plan
// executions onto one *or more* shared operator configurations: each request
// gets its own MAL session (sessions are single-threaded; engines are shared
// and thread-safe), admission is capped so a traffic burst queues instead of
// oversubscribing the devices, and completed plans are cached as rewritten
// templates (mal.PlanCache) so repeated queries skip the plan build and the
// whole rewriter pass pipeline, re-binding only their parameters.
//
// Under load the server also shares work across requests (disable with
// Options.NoCoalesce):
//
//   - Single-flight: requests for the same query with the same parameter
//     values that arrive while an identical execution is in flight do not
//     execute at all — they wait for the in-flight leader and share its
//     result. The coalescing key includes the pass configuration and the
//     data generation, so a template built over replaced data is never
//     shared forward.
//   - Batching: same-query requests with *different* parameters that find
//     all execution slots busy can ride in a running leader's admission
//     slot instead of queueing: the leader, after its own execution, drains
//     the queued riders through its plan cache — each replay re-binds the
//     rider's own parameters — so one admission slot amortises one plan
//     walk across many parameterisations.
//
// With several engines (NewBalanced) the server balances sessions across
// them by in-flight load: each admitted request runs on the engine currently
// executing the fewest plans, ties broken round-robin. Every engine keeps
// its own plan cache — the mal.PlanCache contract scopes a cache to one
// engine over one database — and Invalidate bumps all of them when base
// data is reloaded.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cl"
	"repro/internal/mal"
	"repro/internal/ops"
)

// ErrOverloaded is returned when admission control rejects a request: the
// number of waiting requests exceeds Options.MaxQueued.
var ErrOverloaded = errors.New("serve: server overloaded, request rejected by admission control")

// Options configure a Server.
type Options struct {
	// MaxConcurrent caps how many plans execute simultaneously across the
	// shared engines (the admission cap); <=0 selects 4 per engine.
	MaxConcurrent int
	// MaxQueued caps how many requests may wait for an execution slot
	// beyond the cap before new arrivals are rejected with ErrOverloaded;
	// <=0 selects 16x MaxConcurrent.
	MaxQueued int
	// Passes is the rewriter pass configuration for every plan; the zero
	// value selects mal.DefaultPasses.
	Passes *mal.Passes
	// NoCache disables the rewritten-plan caches: every request builds and
	// rewrites its plan from scratch (ablation and tests). Implies
	// NoCoalesce: without templates there is nothing to share or re-bind.
	NoCache bool
	// NoCoalesce disables request coalescing — single-flighting identical
	// in-flight queries and batching same-query riders into a leader's
	// admission slot — so every request executes independently (ablation,
	// and tests that assert exact execution counts).
	NoCoalesce bool
	// MaxBatch caps how many queued riders one leader may drain through its
	// admission slot (and how many may queue behind one group); <=0
	// selects 16.
	MaxBatch int
}

// QueryStats aggregate the executions of one named query.
type QueryStats struct {
	// Runs counts completed executions (successful or failed); Errors the
	// failed ones; CacheHits the executions served from a cached template.
	Runs, Errors, CacheHits int64
	// Rejected counts requests admission control turned away with
	// ErrOverloaded; they never executed and are not part of Runs or the
	// latency aggregates.
	Rejected int64
	// Dropped counts requests whose caller's context expired or was
	// cancelled before execution started — while waiting for a slot, or
	// already queued when the slot finally freed. Like Rejected they never
	// executed and are not part of Runs.
	Dropped int64
	// Retries counts executions re-run after a device was lost mid-plan:
	// the retry routes around the dead device, so one lost card costs one
	// replay, not a failed request.
	Retries int64
	// Shared counts requests served by single-flight coalescing: they are
	// part of Runs but never executed a plan — they waited for an identical
	// in-flight execution and share its result.
	Shared int64
	// Batched counts requests served as batch riders: part of Runs, executed
	// as template replays inside another request's admission slot.
	Batched int64
	// Rows is the total result rows returned.
	Rows int64
	// Total and Max aggregate end-to-end request latency (admission wait
	// included).
	Total, Max time.Duration
}

// engineSlot is one balanced execution target: an engine, its plan cache,
// and its load counters.
type engineSlot struct {
	o        ops.Operators
	cache    *mal.PlanCache
	inflight atomic.Int64 // plans executing right now
	served   atomic.Int64 // completed executions (observability)
}

// Server dispatches concurrent plan executions onto shared operator
// configurations.
type Server struct {
	slots  []*engineSlot
	passes mal.Passes

	sem     chan struct{}
	maxQ    int64
	waiting atomic.Int64
	rr      atomic.Int64 // round-robin tie-breaker for equal loads

	// Request coalescing (see the package comment). gen mirrors the plan
	// caches' data generation so a flight keyed before Invalidate can never
	// absorb a request arriving after it.
	coalesce bool
	maxBatch int
	gen      atomic.Int64
	fmu      sync.Mutex
	flights  map[string]*flight
	groups   map[string]*batchGroup
	// Observability for deterministic tests: how many followers are
	// currently waiting on a flight / riders queued in a batch group.
	sharedWaiting atomic.Int64
	batchWaiting  atomic.Int64

	mu    sync.Mutex
	stats map[string]*QueryStats
}

// flight is one in-flight execution identical requests wait on. The leader
// fills res/err, removes the flight from the map and closes done (the
// happens-before edge followers read through). A leader that never gets to
// publish — dropped, rejected, or panicked — abandons instead: followers
// observe abandoned and retry from admission, so a cancelled leader cannot
// strand them.
type flight struct {
	done      chan struct{}
	res       *mal.Result
	err       error
	abandoned bool
}

// batchGroup queues same-query riders behind a running leader's admission
// slot. closed means the leader finished draining: late arrivals must not
// append (no one would ever serve them).
type batchGroup struct {
	mu     sync.Mutex
	closed bool
	items  []*batchItem
}

// batchItem is one queued rider. ch is buffered so the leader can always
// complete its send even when the rider already gave up on its context.
type batchItem struct {
	params mal.Params
	ctx    context.Context
	plan   func(*mal.Session) *mal.Result
	ch     chan batchDone
}

// batchDone is the leader's answer to a rider. served=false means the
// leader closed the group without executing this rider (drain cap reached,
// or the rider's context was already dead): the rider retries through
// normal admission.
type batchDone struct {
	res    *mal.Result
	err    error
	hit    bool
	served bool
}

// New creates a server over one shared configuration. The engine must be
// safe for concurrent sessions (all shipped configurations are); the
// server's plan cache is scoped to this engine and the data its plans read,
// per the mal.PlanCache contract.
func New(o ops.Operators, opt Options) *Server {
	return NewBalanced([]ops.Operators{o}, opt)
}

// NewBalanced creates a server balancing sessions across several engines.
// The engines should be interchangeable — same module, same base data —
// since any request may land on any of them; typically they are separate
// instances of one configuration (e.g. per-NUMA-domain hybrid engines).
// Each engine gets its own plan cache.
func NewBalanced(os []ops.Operators, opt Options) *Server {
	if len(os) == 0 {
		panic("serve: NewBalanced needs at least one engine")
	}
	if opt.MaxConcurrent <= 0 {
		opt.MaxConcurrent = 4 * len(os)
	}
	if opt.MaxQueued <= 0 {
		opt.MaxQueued = 16 * opt.MaxConcurrent
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 16
	}
	passes := mal.DefaultPasses()
	if opt.Passes != nil {
		passes = *opt.Passes
	}
	sv := &Server{
		passes:   passes,
		sem:      make(chan struct{}, opt.MaxConcurrent),
		maxQ:     int64(opt.MaxQueued),
		coalesce: !opt.NoCoalesce && !opt.NoCache,
		maxBatch: opt.MaxBatch,
		flights:  map[string]*flight{},
		groups:   map[string]*batchGroup{},
		stats:    map[string]*QueryStats{},
	}
	for _, o := range os {
		slot := &engineSlot{o: o}
		if !opt.NoCache {
			slot.cache = mal.NewPlanCache()
		}
		sv.slots = append(sv.slots, slot)
	}
	return sv
}

// Operators returns the first shared configuration (the only one for a
// single-engine server).
func (sv *Server) Operators() ops.Operators { return sv.slots[0].o }

// Engines returns every balanced configuration in slot order.
func (sv *Server) Engines() []ops.Operators {
	out := make([]ops.Operators, len(sv.slots))
	for i, s := range sv.slots {
		out[i] = s.o
	}
	return out
}

// EngineLoads returns, per engine, how many executions it has completed
// (successful or failed, like QueryStats.Runs) — the balance the dispatcher
// achieved.
func (sv *Server) EngineLoads() []int64 {
	out := make([]int64, len(sv.slots))
	for i, s := range sv.slots {
		out[i] = s.served.Load()
	}
	return out
}

// Invalidate marks the base data as replaced: every engine's plan cache
// moves to a fresh data generation (mal.PlanCache.BumpGeneration), so no
// template captured over the old data can replay. Call it after reloading a
// table the served plans read.
func (sv *Server) Invalidate() {
	sv.gen.Add(1)
	for _, s := range sv.slots {
		if s.cache != nil {
			s.cache.BumpGeneration()
		}
	}
}

// InvalidateTable marks one named base table's data as changed in place (an
// incremental append): each engine's plan cache bumps only that table's
// epoch, so cached templates over other tables stay warm — unlike
// Invalidate, which strands every template. The coalescing generation still
// advances: a flight or batch group keyed before the append must not absorb
// requests arriving after it, since those must see the appended rows.
func (sv *Server) InvalidateTable(name string) {
	sv.gen.Add(1)
	for _, s := range sv.slots {
		if s.cache != nil {
			s.cache.InvalidateTable(name)
		}
	}
}

// pick returns the engine slot with the fewest in-flight plans, breaking
// ties round-robin so equal-load engines share work instead of the first
// one absorbing every burst.
func (sv *Server) pick() *engineSlot {
	if len(sv.slots) == 1 {
		return sv.slots[0]
	}
	start := int((sv.rr.Add(1) - 1) % int64(len(sv.slots)))
	best := sv.slots[start]
	bestLoad := best.inflight.Load()
	for i := 1; i < len(sv.slots); i++ {
		s := sv.slots[(start+i)%len(sv.slots)]
		if l := s.inflight.Load(); l < bestLoad {
			best, bestLoad = s, l
		}
	}
	return best
}

// Execute runs the named plan with the given parameter bindings, blocking
// until an execution slot is free. Admission control rejects the request
// with ErrOverloaded when too many requests are already waiting. Execute is
// safe to call from any number of goroutines.
func (sv *Server) Execute(name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	return sv.ExecuteCtx(context.Background(), name, params, plan)
}

// ExecuteCtx is Execute with a caller deadline: a request whose context
// expires or is cancelled while it waits for an execution slot — or that is
// already queued when its slot finally frees — is dropped *before* any plan
// work starts and reports the context's own error
// (context.DeadlineExceeded or context.Canceled), distinct from the
// admission-control ErrOverloaded. A plan already executing is never
// interrupted: sessions are not preemptible, so the deadline gates
// admission and dequeue, which under load is where requests spend their
// wait anyway.
//
// With coalescing enabled a request may be served without executing: by
// the result of an identical in-flight execution (single-flight), or as a
// template replay inside another request's admission slot (batching). An
// attempt whose leader or batch group dissolves underneath it retries from
// the top; the context gates every retry.
func (sv *Server) ExecuteCtx(ctx context.Context, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	start := time.Now()
	for {
		res, err, retry := sv.attempt(ctx, start, name, params, plan)
		if !retry {
			return res, err
		}
	}
}

// attempt is one pass through coalescing, admission and execution. retry
// means the request was neither served nor terminally refused (its flight
// leader abandoned, or its batch group closed unserved): the caller loops.
func (sv *Server) attempt(ctx context.Context, start time.Time, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (_ *mal.Result, _ error, retry bool) {
	if err := ctx.Err(); err != nil {
		sv.drop(name)
		return nil, err, false
	}

	// Single-flight: identical request already executing → wait for it;
	// none → register as leader so duplicates arriving from here on wait
	// for us. The deferred abandon covers every exit that does not publish
	// (reject, drop, panic), so followers can never be stranded.
	var fl *flight
	var fkey string
	if sv.coalesce {
		fkey = sv.flightKey(name, params)
		sv.fmu.Lock()
		if other := sv.flights[fkey]; other != nil {
			sv.fmu.Unlock()
			return sv.followFlight(ctx, start, name, other)
		}
		fl = &flight{done: make(chan struct{})}
		sv.flights[fkey] = fl
		sv.fmu.Unlock()
		defer func() {
			if fl != nil {
				sv.abandonFlight(fkey, fl)
			}
		}()
	}

	select {
	case sv.sem <- struct{}{}: // free execution slot: admitted immediately
	default:
		// All slots busy. Before queueing, try to ride in an open batch
		// group: a same-query leader will replay its template with our
		// parameters from inside its own slot.
		if sv.coalesce {
			if it, ok := sv.joinBatch(ctx, name, params, plan); ok {
				select {
				case d := <-it.ch:
					sv.batchWaiting.Add(-1)
					if !d.served {
						return nil, nil, true
					}
					sv.noteFull(name, start, d.res, d.hit, d.err, false, true)
					if fl != nil {
						sv.publishFlight(fkey, fl, d.res, d.err)
						fl = nil
					}
					return d.res, d.err, false
				case <-ctx.Done():
					sv.batchWaiting.Add(-1)
					sv.drop(name)
					return nil, ctx.Err(), false
				}
			}
		}
		// Join the bounded wait queue.
		if sv.waiting.Add(1) > sv.maxQ {
			sv.waiting.Add(-1)
			sv.reject(name)
			return nil, ErrOverloaded, false
		}
		select {
		case sv.sem <- struct{}{}:
		case <-ctx.Done():
			sv.waiting.Add(-1)
			sv.drop(name)
			return nil, ctx.Err(), false
		}
		sv.waiting.Add(-1)
	}
	defer func() { <-sv.sem }()
	// Dequeue gate: the slot may have freed long after the caller gave up.
	if err := ctx.Err(); err != nil {
		sv.drop(name)
		return nil, err, false
	}

	slot := sv.pick()
	// Open a batch group before executing, so same-query arrivals that find
	// the slots busy during our run can queue behind this slot.
	var g *batchGroup
	var gkey string
	if sv.coalesce {
		g, gkey = sv.openGroup(name)
	}
	res, hit, err := sv.runWithRetry(slot, name, params, plan)
	sv.noteFull(name, start, res, hit, err, false, false)
	if fl != nil {
		// Publish before draining riders: followers should unblock the
		// moment the shared result exists, not after unrelated replays.
		sv.publishFlight(fkey, fl, res, err)
		fl = nil
	}
	if g != nil {
		sv.drainGroup(slot, g, gkey, name)
	}
	return res, err, false
}

// flightKey identifies executions that may share a result: same query, same
// rewriter passes, same data generation, same parameter values.
func (sv *Server) flightKey(name string, params mal.Params) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('|')
	sb.WriteString(sv.passes.Key())
	fmt.Fprintf(&sb, "|g%d", sv.gen.Load())
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteByte('|')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.FormatFloat(params[k], 'g', -1, 64))
	}
	return sb.String()
}

// followFlight waits for an identical in-flight execution and shares its
// result. An abandoned flight (its leader never published) retries.
func (sv *Server) followFlight(ctx context.Context, start time.Time, name string, fl *flight) (*mal.Result, error, bool) {
	sv.sharedWaiting.Add(1)
	defer sv.sharedWaiting.Add(-1)
	select {
	case <-fl.done:
		if fl.abandoned {
			return nil, nil, true
		}
		sv.noteFull(name, start, fl.res, false, fl.err, true, false)
		return fl.res, fl.err, false
	case <-ctx.Done():
		sv.drop(name)
		return nil, ctx.Err(), false
	}
}

// publishFlight hands the leader's result to every follower: fill the
// result, unhook the flight so new arrivals start fresh, then release the
// followers.
func (sv *Server) publishFlight(key string, fl *flight, res *mal.Result, err error) {
	fl.res, fl.err = res, err
	sv.fmu.Lock()
	delete(sv.flights, key)
	sv.fmu.Unlock()
	close(fl.done)
}

// abandonFlight releases followers without a result; they retry admission.
func (sv *Server) abandonFlight(key string, fl *flight) {
	fl.abandoned = true
	sv.fmu.Lock()
	delete(sv.flights, key)
	sv.fmu.Unlock()
	close(fl.done)
}

// batchKey identifies the open group a rider may join: same query, same
// data generation (parameters differ — that is the point).
func (sv *Server) batchKey(name string) string {
	return name + "|g" + strconv.FormatInt(sv.gen.Load(), 10)
}

// openGroup opens a batch group owned by this request's admission slot.
// When another leader's group for the same query is already open, no new
// group is opened (nil): only the creator drains and closes a group.
func (sv *Server) openGroup(name string) (*batchGroup, string) {
	key := sv.batchKey(name)
	sv.fmu.Lock()
	defer sv.fmu.Unlock()
	if sv.groups[key] != nil {
		return nil, ""
	}
	g := &batchGroup{}
	sv.groups[key] = g
	return g, key
}

// joinBatch appends the request to an open same-query group, if one exists
// and still has room. The returned item's channel delivers the verdict.
func (sv *Server) joinBatch(ctx context.Context, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*batchItem, bool) {
	sv.fmu.Lock()
	g := sv.groups[sv.batchKey(name)]
	sv.fmu.Unlock()
	if g == nil {
		return nil, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed || len(g.items) >= sv.maxBatch {
		return nil, false
	}
	it := &batchItem{params: params, ctx: ctx, plan: plan, ch: make(chan batchDone, 1)}
	g.items = append(g.items, it)
	sv.batchWaiting.Add(1)
	return it, true
}

// drainGroup serves queued riders from the leader's admission slot, one
// template replay each, until the group runs dry or the drain cap is hit;
// then it closes the group and flushes any leftovers unserved (they retake
// normal admission). Riders whose context already expired are flushed, not
// executed.
func (sv *Server) drainGroup(slot *engineSlot, g *batchGroup, key, name string) {
	drained := 0
	for {
		g.mu.Lock()
		if drained >= sv.maxBatch || len(g.items) == 0 {
			g.closed = true
			rest := g.items
			g.items = nil
			g.mu.Unlock()
			sv.fmu.Lock()
			delete(sv.groups, key)
			sv.fmu.Unlock()
			for _, it := range rest {
				it.ch <- batchDone{}
			}
			return
		}
		it := g.items[0]
		g.items = g.items[1:]
		g.mu.Unlock()
		drained++
		if it.ctx.Err() != nil {
			it.ch <- batchDone{}
			continue
		}
		res, hit, err := sv.runWithRetry(slot, name, it.params, it.plan)
		it.ch <- batchDone{res: res, err: err, hit: hit, served: true}
	}
}

// runOnce picks the least-loaded engine and executes the plan on it.
func (sv *Server) runOnce(name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, bool, error) {
	return sv.runOn(sv.pick(), name, params, plan)
}

// runOn executes the plan on the given engine slot.
func (sv *Server) runOn(slot *engineSlot, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (res *mal.Result, hit bool, err error) {
	slot.inflight.Add(1)
	defer slot.inflight.Add(-1)
	if slot.cache != nil {
		res, hit, err = slot.cache.Run(slot.o, name, params, sv.passes, plan)
	} else {
		s := mal.NewSession(slot.o)
		s.SetPasses(sv.passes)
		s.SetParams(params)
		res, err = mal.RunQuery(s, plan)
	}
	slot.served.Add(1)
	return res, hit, err
}

// runWithRetry is runOn plus the device-loss replay: a device that died
// mid-plan took the plan's intermediates with it, but it is latched dead,
// so one replay routes around it (hybrid pick/placement skip dead devices;
// base data lives on the host).
func (sv *Server) runWithRetry(slot *engineSlot, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (res *mal.Result, hit bool, err error) {
	res, hit, err = sv.runOn(slot, name, params, plan)
	if err != nil && errors.Is(err, cl.ErrDeviceLost) {
		sv.mu.Lock()
		sv.statLocked(name).Retries++
		sv.mu.Unlock()
		res, hit, err = sv.runOn(slot, name, params, plan)
	}
	return res, hit, err
}

// statLocked returns (creating if needed) the named stats; sv.mu held.
func (sv *Server) statLocked(name string) *QueryStats {
	st := sv.stats[name]
	if st == nil {
		st = &QueryStats{}
		sv.stats[name] = st
	}
	return st
}

func (sv *Server) reject(name string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.statLocked(name).Rejected++
}

func (sv *Server) drop(name string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.statLocked(name).Dropped++
}

// noteFull records a completed request: every request ends in exactly one
// of Rejected, Dropped or Runs, with shared/batched marking the coalesced
// service paths inside Runs.
func (sv *Server) noteFull(name string, start time.Time, res *mal.Result, hit bool, err error, shared, batched bool) {
	took := time.Since(start)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st := sv.statLocked(name)
	st.Runs++
	if err != nil {
		st.Errors++
	}
	if hit {
		st.CacheHits++
	}
	if shared {
		st.Shared++
	}
	if batched {
		st.Batched++
	}
	if res != nil {
		st.Rows += int64(res.Rows())
	}
	st.Total += took
	if took > st.Max {
		st.Max = took
	}
}

// FeedbackWarm reports how many cached current-generation templates across
// the engines carry cardinality feedback from completed executions — the
// plans whose next placement prices with observed rows instead of the
// estimator's constants. Feedback lives on the templates, so it survives
// across client sessions per engine and dies with Invalidate: a reload
// strands it under the old data generation where no request reaches it.
func (sv *Server) FeedbackWarm() int {
	n := 0
	for _, s := range sv.slots {
		if s.cache != nil {
			n += s.cache.WarmTemplates()
		}
	}
	return n
}

// CacheStats returns plan-cache hits, misses and resident templates summed
// across the engines (zeros when the caches are disabled).
func (sv *Server) CacheStats() (hits, misses int64, size int) {
	for _, s := range sv.slots {
		if s.cache == nil {
			continue
		}
		h, m, n := s.cache.Stats()
		hits += h
		misses += m
		size += n
	}
	return hits, misses, size
}

// Stats returns a copy of the per-query statistics.
func (sv *Server) Stats() map[string]QueryStats {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make(map[string]QueryStats, len(sv.stats))
	for name, st := range sv.stats {
		out[name] = *st
	}
	return out
}

// String renders the per-query statistics as an aligned table.
func (sv *Server) String() string {
	stats := sv.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %6s %6s %6s %6s %6s %6s %6s %6s %10s %12s %12s\n",
		"query", "runs", "errs", "rej", "drop", "retry", "hits", "shr", "bat", "rows", "avg", "max")
	for _, n := range names {
		st := stats[n]
		avg := time.Duration(0)
		if st.Runs > 0 {
			avg = st.Total / time.Duration(st.Runs)
		}
		fmt.Fprintf(&sb, "%-24s %6d %6d %6d %6d %6d %6d %6d %6d %10d %12v %12v\n",
			n, st.Runs, st.Errors, st.Rejected, st.Dropped, st.Retries, st.CacheHits, st.Shared, st.Batched, st.Rows,
			avg.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	hits, misses, size := sv.CacheStats()
	fmt.Fprintf(&sb, "plan cache: %d hits, %d misses, %d templates\n", hits, misses, size)
	if len(sv.slots) > 1 {
		fmt.Fprintf(&sb, "engines: %d, served %v\n", len(sv.slots), sv.EngineLoads())
	}
	return sb.String()
}
