package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mal"
	"repro/internal/ops"
	"repro/internal/tpch"
)

// unfusedPasses is the pass set the sharded path pins (fusion off — see the
// sharded.go package comment); references must run under it too.
func unfusedPasses() mal.Passes {
	p := mal.DefaultPasses()
	p.Fusion = false
	return p
}

func shardEngines(cfg mal.Config, n int) []ops.Operators {
	es := make([]ops.Operators, n)
	for i := range es {
		es[i] = cfg.Build(engineOpts())
	}
	return es
}

// refRun executes a query unsharded (fusion off) on the given engine.
func refRun(t *testing.T, eng ops.Operators, q tpch.Query, d *tpch.DB) *mal.Result {
	t.Helper()
	s := mal.NewSession(eng)
	s.SetPasses(unfusedPasses())
	res, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result { return q.Plan(s, d) })
	if err != nil {
		t.Fatalf("Q%d reference: %v", q.Num, err)
	}
	return res
}

// runShardedWorkload drives every TPC-H query through a sharded server three
// times (one cold compile run, two warm runs) and checks each result against
// an unsharded reference on a fresh engine of the same configuration, up to
// that engine's own serial reproducibility (probed, like the -race serve
// tests: atomic float aggregation is not bitwise stable even sequentially).
// It returns the warm results for cross-shard-count comparison.
func runShardedWorkload(t *testing.T, cfg mal.Config, theta float64, nshards int) map[int]*mal.Result {
	t.Helper()
	sdb := tpch.GenerateSharded(0.005, 42, theta, nshards)
	queries := tpch.Queries()

	refEng := cfg.Build(engineOpts())
	refs := map[int]*mal.Result{}
	deterministic := true
	for _, q := range queries {
		refs[q.Num] = refRun(t, refEng, q, sdb.Global)
		if canonEqual(refRun(t, refEng, q, sdb.Global), refs[q.Num]) != nil {
			deterministic = false
		}
	}
	compare := comparatorFor(deterministic)

	ss := NewSharded(cfg.Build(engineOpts()), shardEngines(cfg, nshards), sdb.Catalog(), Options{MaxConcurrent: 4})
	warm := map[int]*mal.Result{}
	for _, q := range queries {
		q := q
		plan := func(s *mal.Session) *mal.Result { return q.Plan(s, sdb.Global) }
		for round := 0; round < 3; round++ {
			res, err := ss.Execute(fmt.Sprintf("Q%d", q.Num), nil, plan)
			if err != nil {
				t.Fatalf("%v theta=%v shards=%d Q%d round %d: %v", cfg, theta, nshards, q.Num, round, err)
			}
			if err := compare(res, refs[q.Num]); err != nil {
				t.Fatalf("%v theta=%v shards=%d Q%d round %d differs from unsharded: %v",
					cfg, theta, nshards, q.Num, round, err)
			}
			warm[q.Num] = res
		}
	}
	st := ss.Stats()
	if st.ColdCompiles != int64(len(queries)) {
		t.Fatalf("cold compiles = %d, want %d", st.ColdCompiles, len(queries))
	}
	if st.Fallbacks != 0 {
		t.Fatalf("%d scatter fallbacks: shard executions are failing silently", st.Fallbacks)
	}
	if st.Scattered == 0 {
		t.Fatalf("no query scattered (degenerate=%d): shard compiler decomposed nothing", st.Degenerate)
	}
	if st.Scattered+st.Degenerate != int64(2*len(queries)) {
		t.Fatalf("warm runs unaccounted: scattered=%d degenerate=%d, want %d total",
			st.Scattered, st.Degenerate, 2*len(queries))
	}
	if !deterministic {
		return nil
	}
	return warm
}

// TestShardedByteIdentityAcrossShardCounts is the acceptance check: every
// TPC-H query answered by the sharded server at 1, 2 and 4 shards is
// byte-identical to the unsharded execution — and therefore across shard
// counts — on the deterministic engine, under uniform and Zipf-skewed data.
func TestShardedByteIdentityAcrossShardCounts(t *testing.T) {
	thetas := []float64{0, 0.85}
	if testing.Short() {
		thetas = []float64{0.85}
	}
	for _, theta := range thetas {
		perCount := map[int]map[int]*mal.Result{}
		counts := []int{1, 2, 4}
		if testing.Short() {
			counts = []int{2}
		}
		for _, nshards := range counts {
			perCount[nshards] = runShardedWorkload(t, mal.MS, theta, nshards)
		}
		base := perCount[counts[0]]
		for _, nshards := range counts[1:] {
			for num, res := range perCount[nshards] {
				if err := canonEqual(res, base[num]); err != nil {
					t.Fatalf("theta=%v Q%d: %d shards differs from %d shards: %v",
						theta, num, nshards, counts[0], err)
				}
			}
		}
	}
}

// TestShardedByteIdentityOcelotEngines runs the sharded workload with
// OpenCL-style engines per shard — the paper's CPU configuration and the §7
// hybrid — under Zipf skew.
func TestShardedByteIdentityOcelotEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("Ocelot engine matrix in -short mode")
	}
	for _, cfg := range []mal.Config{mal.OcelotCPU, mal.Hybrid} {
		runShardedWorkload(t, cfg, 0.85, 2)
	}
}

// TestShardedConcurrentClients: concurrent clients against one sharded
// server must all get the unsharded answer (MS engines: exact), exercising
// the compile single-flight and the per-shard admission paths under -race.
func TestShardedConcurrentClients(t *testing.T) {
	sdb := tpch.GenerateSharded(0.005, 42, 0, 2)
	refEng := mal.MS.Build(engineOpts())
	nums := []int{1, 6, 12, 15}
	refs := map[int]*mal.Result{}
	for _, num := range nums {
		refs[num] = refRun(t, refEng, *tpch.QueryByNum(num), sdb.Global)
	}
	ss := NewSharded(mal.MS.Build(engineOpts()), shardEngines(mal.MS, 2), sdb.Catalog(), Options{MaxConcurrent: 4})
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(nums))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range nums {
				q := *tpch.QueryByNum(nums[(i+worker)%len(nums)])
				res, err := ss.Execute(fmt.Sprintf("Q%d", q.Num), nil, func(s *mal.Session) *mal.Result {
					return q.Plan(s, sdb.Global)
				})
				if err != nil {
					errs <- fmt.Errorf("Q%d: %w", q.Num, err)
					return
				}
				if err := canonEqual(res, refs[q.Num]); err != nil {
					errs <- fmt.Errorf("Q%d differs: %w", q.Num, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Single-flight: 4 queries were compiled once each, not once per client.
	if st := ss.Stats(); st.ColdCompiles != int64(len(nums)) {
		t.Fatalf("cold compiles = %d, want %d (compile single-flight broken)", st.ColdCompiles, len(nums))
	}
}
