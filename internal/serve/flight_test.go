package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/mem"
	"repro/internal/ops"
)

func flightCol(name string, vals []int32) *bat.BAT {
	s := mem.AllocI32(len(vals))
	copy(s, vals)
	return bat.NewI32(name, s)
}

func flightFCol(name string, vals []float32) *bat.BAT {
	s := mem.AllocF32(len(vals))
	copy(s, vals)
	return bat.NewF32(name, s)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for start := time.Now(); !cond(); {
		if time.Since(start) > 30*time.Second {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightDuplicatesShareOneExecution: N identical concurrent
// requests must execute the plan exactly once — one leader runs, the rest
// wait on its flight and share the result — with the coalescing visible in
// the stats.
func TestSingleFlightDuplicatesShareOneExecution(t *testing.T) {
	const followers = 7
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 4})
	var executions atomic.Int64
	plan := func(s *mal.Session) *mal.Result {
		executions.Add(1)
		// Hold the leader's execution open until every follower is waiting
		// on the flight, so none can slip past to an independent run.
		for start := time.Now(); sv.sharedWaiting.Load() < followers; {
			if time.Since(start) > 30*time.Second {
				t.Error("followers never queued behind the flight")
				break
			}
			time.Sleep(time.Millisecond)
		}
		return s.Result(nil)
	}

	var wg sync.WaitGroup
	results := make(chan *mal.Result, followers+1)
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sv.Execute("dup", nil, plan)
			if err != nil {
				t.Errorf("coalesced request failed: %v", err)
				return
			}
			results <- res
		}()
	}
	wg.Wait()
	close(results)
	if n := executions.Load(); n != 1 {
		t.Fatalf("plan executed %d times for %d identical requests, want 1", n, followers+1)
	}
	var ref *mal.Result
	for res := range results {
		if ref == nil {
			ref = res
			continue
		}
		if err := canonEqual(res, ref); err != nil {
			t.Fatalf("shared results disagree: %v", err)
		}
	}
	st := sv.Stats()["dup"]
	if st.Runs != followers+1 || st.Shared != followers || st.Errors != 0 {
		t.Fatalf("stats = %+v, want %d runs with %d shared", st, followers+1, followers)
	}
}

// TestSingleFlightLeaderCancelDoesNotStrandFollowers: when a flight's
// leader is dropped before executing (context cancelled while queued), its
// followers must not hang on the dead flight — they retry, one becomes the
// new leader, and the request completes.
func TestSingleFlightLeaderCancelDoesNotStrandFollowers(t *testing.T) {
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := func(s *mal.Session) *mal.Result {
		close(started)
		<-release
		return s.Result(nil)
	}
	fast := func(s *mal.Session) *mal.Result { return s.Result(nil) }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sv.Execute("blocker", nil, blocker); err != nil {
			t.Errorf("blocker failed: %v", err)
		}
	}()
	<-started // the only slot is held

	// The leader registers the flight for "q", then queues for the slot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := sv.ExecuteCtx(ctx, "q", nil, fast)
		leaderErr <- err
	}()
	waitFor(t, "leader to queue", func() bool { return sv.waiting.Load() == 1 })

	// The follower finds the in-flight leader and waits on it.
	followerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := sv.Execute("q", nil, fast)
		followerErr <- err
	}()
	waitFor(t, "follower to join the flight", func() bool { return sv.sharedWaiting.Load() == 1 })

	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	// The follower must have moved on from the abandoned flight: it requeues
	// as its own leader and completes once the blocker releases the slot.
	waitFor(t, "follower to requeue", func() bool { return sv.waiting.Load() == 1 })
	close(release)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower stranded by cancelled leader: %v", err)
	}
	wg.Wait()

	st := sv.Stats()["q"]
	if st.Dropped != 1 || st.Runs != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 dropped (the leader) and 1 run (the follower)", st)
	}
}

// TestBatchRidersServedInLeadersSlot: same-query requests with different
// parameters that find all slots busy must ride in the running leader's
// admission slot — served as template replays re-binding each rider's own
// parameters — instead of queueing for slots of their own.
func TestBatchRidersServedInLeadersSlot(t *testing.T) {
	k := flightCol("k", []int32{1, 2, 3, 4, 5})
	v := flightFCol("v", []float32{10, 20, 30, 40, 50})
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 1})
	plan := func(s *mal.Session) *mal.Result {
		hi := s.Param("hi", 4)
		sel := s.Select(k, nil, 2, hi, true, true)
		vv := s.Project(sel, v)
		// Hold the cold build open until both riders are queued in the batch
		// group (replays never run this function, so only the leader waits).
		for start := time.Now(); sv.batchWaiting.Load() < 2; {
			if time.Since(start) > 30*time.Second {
				t.Error("riders never joined the batch group")
				break
			}
			time.Sleep(time.Millisecond)
		}
		return s.Result([]string{"sum"}, s.Aggr(ops.Sum, vv, nil, 0))
	}

	sum := func(res *mal.Result) float64 { return res.Canonical()[0][0] }
	type out struct {
		hi   float64
		want float64
		got  float64
		err  error
	}
	outs := make(chan out, 3)
	var wg sync.WaitGroup
	run := func(hi, want float64) {
		defer wg.Done()
		res, err := sv.Execute("q", mal.Params{"hi": hi}, plan)
		if err != nil {
			outs <- out{hi: hi, err: err}
			return
		}
		outs <- out{hi: hi, want: want, got: sum(res)}
	}
	// Leader: k in 2..4 → 20+30+40.
	wg.Add(1)
	go run(4, 90)
	waitFor(t, "leader to open the group", func() bool {
		sv.fmu.Lock()
		defer sv.fmu.Unlock()
		return len(sv.groups) == 1
	})
	// Riders: different bounds, same template.
	wg.Add(2)
	go run(3, 50)  // k in 2..3
	go run(5, 140) // k in 2..5
	wg.Wait()
	close(outs)
	for o := range outs {
		if o.err != nil {
			t.Fatalf("hi=%v: %v", o.hi, o.err)
		}
		if o.got != o.want {
			t.Fatalf("hi=%v: sum = %v, want %v (rider parameters not re-bound?)", o.hi, o.got, o.want)
		}
	}
	st := sv.Stats()["q"]
	if st.Runs != 3 || st.Batched != 2 || st.CacheHits != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 3 runs, 2 batched, 2 cache hits", st)
	}
	hits, misses, _ := sv.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cache stats %d hits / %d misses, want 2/1", hits, misses)
	}
}

// TestBatchRiderCancelWhileQueued: a rider whose context is cancelled while
// it waits in a running leader's batch group must unblock immediately with
// the context's own error — not wait for the leader's drain — and the
// leader's batch accounting must stay consistent: the dead rider is flushed
// unserved, later riders are still served, and the group dissolves cleanly.
func TestBatchRiderCancelWhileQueued(t *testing.T) {
	k := flightCol("k", []int32{1, 2, 3, 4, 5})
	v := flightFCol("v", []float32{10, 20, 30, 40, 50})
	sv := New(mal.MS.Build(mal.ConfigOptions{}), Options{MaxConcurrent: 1})
	release := make(chan struct{})
	plan := func(s *mal.Session) *mal.Result {
		hi := s.Param("hi", 4)
		sel := s.Select(k, nil, 2, hi, true, true)
		vv := s.Project(sel, v)
		<-release // hold the leader's slot until the test says so
		return s.Result([]string{"sum"}, s.Aggr(ops.Sum, vv, nil, 0))
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := sv.Execute("q", mal.Params{"hi": 4}, plan)
		leaderErr <- err
	}()
	waitFor(t, "leader to open the group", func() bool {
		sv.fmu.Lock()
		defer sv.fmu.Unlock()
		return len(sv.groups) == 1
	})

	// Rider A queues in the group, then its caller gives up.
	ctx, cancel := context.WithCancel(context.Background())
	riderAErr := make(chan error, 1)
	go func() {
		_, err := sv.ExecuteCtx(ctx, "q", mal.Params{"hi": 3}, plan)
		riderAErr <- err
	}()
	waitFor(t, "rider A to join the group", func() bool { return sv.batchWaiting.Load() == 1 })
	cancel()
	select {
	case err := <-riderAErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled rider returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled rider still blocked in the batch group (leader never released it)")
	}
	if w := sv.batchWaiting.Load(); w != 0 {
		t.Fatalf("batchWaiting = %d after rider cancel, want 0", w)
	}

	// Rider B joins after the cancellation and must still be served.
	riderB := make(chan error, 1)
	var riderBSum float64
	go func() {
		res, err := sv.ExecuteCtx(context.Background(), "q", mal.Params{"hi": 5}, plan)
		if err == nil {
			riderBSum = res.Canonical()[0][0]
		}
		riderB <- err
	}()
	waitFor(t, "rider B to join the group", func() bool { return sv.batchWaiting.Load() == 1 })

	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-riderB; err != nil {
		t.Fatalf("rider B after a cancelled groupmate: %v", err)
	}
	if riderBSum != 140 { // k in 2..5
		t.Fatalf("rider B sum = %v, want 140 (parameters not re-bound?)", riderBSum)
	}
	sv.fmu.Lock()
	open := len(sv.groups)
	sv.fmu.Unlock()
	if open != 0 {
		t.Fatalf("%d batch groups still open after drain", open)
	}
	st := sv.Stats()["q"]
	if st.Runs != 2 || st.Batched != 1 || st.Dropped != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 runs (leader + rider B), 1 batched, 1 dropped (rider A)", st)
	}
}
