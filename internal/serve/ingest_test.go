package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mal"
	"repro/internal/tpch"
)

// TestServerInvalidateTableKeepsOtherTablesWarm is the staleness regression
// check for per-table epochs on a plain Server: appending to lineitem must
// force queries over lineitem to rebuild while queries over unrelated
// tables keep replaying their cached templates (cache-hit counters prove
// it).
func TestServerInvalidateTableKeepsOtherTablesWarm(t *testing.T) {
	d := testDB()
	sv := New(mal.MS.Build(engineOpts()), Options{MaxConcurrent: 2})
	q6, q11 := *tpch.QueryByNum(6), *tpch.QueryByNum(11) // lineitem vs partsupp-only
	run := func(q tpch.Query) {
		t.Helper()
		if _, err := sv.Execute(fmt.Sprintf("Q%d", q.Num), nil, func(s *mal.Session) *mal.Result {
			return q.Plan(s, d)
		}); err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
	}
	run(q6)
	run(q11)
	run(q6)
	run(q11)
	hits, misses, _ := sv.CacheStats()
	if hits != 2 || misses != 2 {
		t.Fatalf("warmup cache stats %d/%d, want 2 hits / 2 misses", hits, misses)
	}

	sv.InvalidateTable("lineitem")

	run(q11) // no lineitem: template must stay warm
	if h, m, _ := sv.CacheStats(); h != hits+1 || m != misses {
		t.Fatalf("Q11 after lineitem invalidate: %d/%d (was %d/%d) — unrelated template went cold", h, m, hits, misses)
	}
	run(q6) // reads lineitem: must rebuild
	if h, m, _ := sv.CacheStats(); h != hits+1 || m != misses+1 {
		t.Fatalf("Q6 after lineitem invalidate: %d/%d (was %d/%d) — stale template replayed", h, m, hits, misses)
	}
}

// TestShardedLiveIngest serves reads concurrently with an incremental
// append. Every result observed during the append must equal either the
// pre-append or the post-append answer (generation-stamped snapshots, no
// torn reads); afterwards the appended rows must be visible, queries over
// the appended tables recompile exactly once, and queries over untouched
// tables stay warm in the coordinator's cache.
func TestShardedLiveIngest(t *testing.T) {
	full := tpch.GenerateSkewed(0.005, 42, 0.5)
	pre := tpch.PrefixDB(full, full.Orders.Rows()*4/5)
	sdb := tpch.ShardDB(pre, 2)

	refEng := mal.MS.Build(engineOpts())
	q6, q11 := *tpch.QueryByNum(6), *tpch.QueryByNum(11)
	preRef6 := refRun(t, refEng, q6, pre)
	postRef6 := refRun(t, refEng, q6, full)
	ref11 := refRun(t, refEng, q11, pre) // partsupp-only: append changes nothing
	if canonEqual(preRef6, postRef6) == nil {
		t.Fatal("append does not change Q6's answer; the test would prove nothing")
	}

	ss := NewSharded(mal.MS.Build(engineOpts()), shardEngines(mal.MS, 2), sdb.Catalog(), Options{MaxConcurrent: 4})
	exec := func(q tpch.Query) (*mal.Result, error) {
		return ss.Execute(fmt.Sprintf("Q%d", q.Num), nil, func(s *mal.Session) *mal.Result {
			return q.Plan(s, sdb.Global)
		})
	}
	for i := 0; i < 3; i++ { // cold compile + warm rounds
		res, err := exec(q6)
		if err != nil {
			t.Fatal(err)
		}
		if err := canonEqual(res, preRef6); err != nil {
			t.Fatalf("pre-append Q6 round %d: %v", i, err)
		}
		if res, err = exec(q11); err != nil {
			t.Fatal(err)
		}
		if err := canonEqual(res, ref11); err != nil {
			t.Fatalf("pre-append Q11 round %d: %v", i, err)
		}
	}

	// Readers hammer Q6 while the tail lands. Each read must see exactly one
	// generation.
	const readers, reads = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, readers*reads)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				res, err := exec(q6)
				if err != nil {
					errs <- err
					return
				}
				if canonEqual(res, preRef6) != nil && canonEqual(res, postRef6) != nil {
					errs <- fmt.Errorf("read %d: result matches neither generation (torn read)", i)
					return
				}
			}
		}()
	}
	ss.Ingest(tpch.ShardTables(), func() { sdb.AppendTail(full) })
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The appended rows are visible now, through a recompiled plan.
	res, err := exec(q6)
	if err != nil {
		t.Fatal(err)
	}
	if err := canonEqual(res, postRef6); err != nil {
		t.Fatalf("post-append Q6: %v", err)
	}
	if st := ss.Stats(); st.Recompiles == 0 {
		t.Fatal("append did not retire the compiled Q6 plan")
	} else if st.Fallbacks != 0 {
		t.Fatalf("%d scatter fallbacks during ingest", st.Fallbacks)
	}

	// Q11 reads none of the appended tables: its coordinator template must
	// still be warm — served as a hit, no rebuild.
	h0, m0, _ := ss.Coordinator().CacheStats()
	if res, err = exec(q11); err != nil {
		t.Fatal(err)
	}
	if err := canonEqual(res, ref11); err != nil {
		t.Fatalf("post-append Q11: %v", err)
	}
	h1, m1, _ := ss.Coordinator().CacheStats()
	if m1 != m0 || h1 != h0+1 {
		t.Fatalf("Q11 after ingest: coordinator cache %d/%d -> %d/%d — template went cold", h0, m0, h1, m1)
	}
}
