// Sharded scale-out serving: one logical database hash-partitioned across N
// engines, every query answered byte-identically to the unsharded server.
// A ShardedServer owns one serve.Server per shard (scatter targets, each
// with its own plan cache over its shard's slice) plus a coordinator Server
// over the global catalog (degenerate queries and fallbacks). The first
// execution of a query runs cold and unsharded on the coordinator engine;
// mal.CompileSharded then derives per-shard fragments and a merge fragment
// from the finished session's IR, and every later execution scatters the
// shard fragments, gathers the frontier values back into exact global row
// order, and runs the merge fragment on the coordinator engine. Queries the
// compiler cannot decompose (join-heavy shapes, dimension-only plans) come
// back degenerate and are simply delegated to the coordinator — correctness
// never depends on decomposability.
//
// The sharded path runs with plan fusion forced off: fused float pipelines
// are only numerically close (not bitwise equal) to their unfused
// expansion, and byte-identity across shard counts is the contract here.
//
// Live ingest rides the same copy-on-append snapshots as the storage layer
// (bat.AppendDelta): a warm scatter keeps reading the generation its plan
// was compiled against, so appends never tear an in-flight query. Ingest
// serialises the catalog mutation against cold compiles (ingestMu) and then
// bumps per-table epochs — here for the compiled shard plans, and through
// Server.InvalidateTable for every plan cache — so only queries that read
// the appended table recompile; everything else stays warm.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mal"
	"repro/internal/ops"
)

// ShardedServer scatter-gathers queries across per-shard servers.
type ShardedServer struct {
	cat      *mal.ShardCatalog
	coord    *Server
	shards   []*Server
	coordOps ops.Operators
	passes   mal.Passes

	// ingestMu serialises catalog mutation (Ingest's apply) against cold
	// compiles: a compile holds the read side across its unsharded run and
	// CompileSharded, so the base BATs it resolved and the catalog views the
	// compiler snapshots are one generation. Warm executions don't take it —
	// their snapshots are immutable.
	ingestMu sync.RWMutex

	// cmu guards the compiled-plan table, the per-table epochs, and the
	// compile single-flight registry. Plans never build or execute under it
	// (see internal/lint lockorder): compiles register here, build outside,
	// and re-enter only to store.
	cmu       sync.Mutex
	entries   map[string]*shardEntry
	compiling map[string]*compileCall
	epochs    map[string]int64

	scattered    atomic.Int64 // warm scatter-gather executions served
	degenerated  atomic.Int64 // executions delegated for a degenerate plan
	coldCompiles atomic.Int64 // cold unsharded runs that compiled a plan
	fallbacks    atomic.Int64 // scatter failures answered by the coordinator
	recompiles   atomic.Int64 // compiled plans dropped by epoch staleness
}

// shardEntry is one resident compiled plan plus the per-table epochs it was
// compiled against (same staleness scheme as mal.PlanCache's slots).
type shardEntry struct {
	sp   *mal.ShardPlan
	deps map[string]int64
}

// compileCall single-flights a query's cold compile: concurrent first
// executions wait for the registered builder instead of each running the
// query cold.
type compileCall struct {
	done chan struct{}
}

// NewSharded creates a sharded server: one scatter target per shard engine
// (which must line up with cat's shard order), and a coordinator over the
// global catalog on coordEngine. All servers share opt, with the pass
// configuration's fusion forced off (see the package comment).
func NewSharded(coordEngine ops.Operators, shardEngines []ops.Operators, cat *mal.ShardCatalog, opt Options) *ShardedServer {
	if cat == nil || cat.NShards != len(shardEngines) {
		panic(fmt.Sprintf("serve: catalog has %d shards, %d shard engines given",
			catShards(cat), len(shardEngines)))
	}
	passes := mal.DefaultPasses()
	if opt.Passes != nil {
		passes = *opt.Passes
	}
	passes.Fusion = false
	opt.Passes = &passes
	ss := &ShardedServer{
		cat:       cat,
		coord:     New(coordEngine, opt),
		coordOps:  coordEngine,
		passes:    passes,
		entries:   map[string]*shardEntry{},
		compiling: map[string]*compileCall{},
		epochs:    map[string]int64{},
	}
	for _, o := range shardEngines {
		ss.shards = append(ss.shards, New(o, opt))
	}
	return ss
}

func catShards(cat *mal.ShardCatalog) int {
	if cat == nil {
		return 0
	}
	return cat.NShards
}

// NShards returns the shard count.
func (ss *ShardedServer) NShards() int { return len(ss.shards) }

// Coordinator returns the coordinator server (stats and cache inspection).
func (ss *ShardedServer) Coordinator() *Server { return ss.coord }

// Shard returns shard i's server (stats and cache inspection).
func (ss *ShardedServer) Shard(i int) *Server { return ss.shards[i] }

// ShardStats are the sharded layer's own counters (the per-server QueryStats
// live on Coordinator and the Shard servers).
type ShardStats struct {
	// Scattered counts warm scatter-gather executions; Degenerate executions
	// delegated to the coordinator because the plan does not decompose;
	// ColdCompiles first executions that ran unsharded and compiled a plan;
	// Fallbacks scatter attempts answered by the coordinator after a shard,
	// gather or merge failure; Recompiles compiled plans dropped because a
	// table they read moved to a newer epoch.
	Scattered, Degenerate, ColdCompiles, Fallbacks, Recompiles int64
}

// Stats returns the sharded layer's counters.
func (ss *ShardedServer) Stats() ShardStats {
	return ShardStats{
		Scattered:    ss.scattered.Load(),
		Degenerate:   ss.degenerated.Load(),
		ColdCompiles: ss.coldCompiles.Load(),
		Fallbacks:    ss.fallbacks.Load(),
		Recompiles:   ss.recompiles.Load(),
	}
}

// Execute is ExecuteCtx without a caller deadline.
func (ss *ShardedServer) Execute(name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	return ss.ExecuteCtx(context.Background(), name, params, plan)
}

// ExecuteCtx runs the named query. The first execution (and the first after
// an epoch bump invalidated the compiled plan) runs cold: unsharded on the
// coordinator engine, compiling the shard plan as a side effect — its result
// is the answer. Warm executions scatter across the shard servers (each an
// admission-controlled, plan-cached serve.Server), gather, and merge on the
// coordinator engine. plan must read the global catalog's tables: it is what
// cold runs and degenerate delegations execute.
func (ss *ShardedServer) ExecuteCtx(ctx context.Context, name string, params mal.Params, plan func(*mal.Session) *mal.Result) (*mal.Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ss.cmu.Lock()
		if ent := ss.entryLocked(name); ent != nil {
			sp := ent.sp
			ss.cmu.Unlock()
			return ss.runCompiled(ctx, name, params, plan, sp)
		}
		if cc := ss.compiling[name]; cc != nil {
			ss.cmu.Unlock()
			select {
			case <-cc.done:
				continue // entry resident now, or the builder failed and we take over
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		cc := &compileCall{done: make(chan struct{})}
		ss.compiling[name] = cc
		snap := make(map[string]int64, len(ss.epochs))
		for k, v := range ss.epochs {
			snap[k] = v
		}
		ss.cmu.Unlock()
		return ss.compileCold(name, params, plan, cc, snap)
	}
}

// entryLocked returns the resident compiled plan for name, dropping it (and
// reporting nil) if any table it reads moved past the epochs it was compiled
// against. cmu held.
func (ss *ShardedServer) entryLocked(name string) *shardEntry {
	ent := ss.entries[name]
	if ent == nil {
		return nil
	}
	for tab, e := range ent.deps {
		if ss.epochs[tab] != e {
			delete(ss.entries, name)
			ss.recompiles.Add(1)
			return nil
		}
	}
	return ent
}

// compileCold runs the query unsharded on the coordinator engine and compiles
// the shard plan from the finished session. The read side of ingestMu spans
// both, so the run and the compiler see one catalog generation. The cold
// result is returned to the caller; the compiled plan (decomposed or
// degenerate — CompileSharded never fails) is stored for the next execution.
func (ss *ShardedServer) compileCold(name string, params mal.Params, plan func(*mal.Session) *mal.Result, cc *compileCall, snap map[string]int64) (*mal.Result, error) {
	defer func() {
		ss.cmu.Lock()
		delete(ss.compiling, name)
		ss.cmu.Unlock()
		close(cc.done)
	}()
	ss.ingestMu.RLock()
	s := mal.NewSession(ss.coordOps)
	s.SetPasses(ss.passes)
	s.SetParams(params)
	res, err := mal.RunQuery(s, plan)
	if err != nil {
		ss.ingestMu.RUnlock()
		return nil, err
	}
	sp := mal.CompileSharded(name, s, ss.cat)
	ss.ingestMu.RUnlock()
	deps := make(map[string]int64, len(sp.Tables()))
	for _, tab := range sp.Tables() {
		deps[tab] = snap[tab]
	}
	ss.cmu.Lock()
	ss.entries[name] = &shardEntry{sp: sp, deps: deps}
	ss.cmu.Unlock()
	ss.coldCompiles.Add(1)
	return res, nil
}

// runCompiled executes a compiled plan: delegation for degenerate plans,
// scatter-gather-merge otherwise. A scatter that fails for any reason other
// than the caller's own context falls back to the coordinator — a shard
// hiccup degrades to unsharded latency, not to an error.
func (ss *ShardedServer) runCompiled(ctx context.Context, name string, params mal.Params, plan func(*mal.Session) *mal.Result, sp *mal.ShardPlan) (*mal.Result, error) {
	if sp.Degenerate() {
		ss.degenerated.Add(1)
		return ss.coord.ExecuteCtx(ctx, name, params, ss.guarded(plan))
	}
	res, err := ss.scatter(ctx, name, params, sp)
	if err == nil {
		ss.scattered.Add(1)
		return res, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	ss.fallbacks.Add(1)
	return ss.coord.ExecuteCtx(ctx, name, params, ss.guarded(plan))
}

// scatter runs the shard fragments concurrently through the shard servers
// (admission control and per-shard plan caching apply per shard), gathers
// the frontier into global row order, and runs the merge fragment.
func (ss *ShardedServer) scatter(ctx context.Context, name string, params mal.Params, sp *mal.ShardPlan) (*mal.Result, error) {
	n := sp.NShards()
	results := make([]*mal.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = ss.shards[i].ExecuteCtx(ctx, name, params, sp.PlanFor(i))
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	gathered, err := sp.Gather(results)
	if err != nil {
		return nil, err
	}
	return sp.Merge(ss.coordOps, params, gathered)
}

// guarded wraps an unsharded plan closure with the ingest read lock: the
// closure resolves base columns live (Table.Col), so a concurrent append
// must not swap the column set mid-build — each build reads one generation.
func (ss *ShardedServer) guarded(plan func(*mal.Session) *mal.Result) func(*mal.Session) *mal.Result {
	return func(s *mal.Session) *mal.Result {
		ss.ingestMu.RLock()
		defer ss.ingestMu.RUnlock()
		return plan(s)
	}
}

// InvalidateTable bumps one table's epoch everywhere: compiled shard plans
// that read it are dropped (lazily, at next lookup), and the coordinator's
// and every shard server's plan caches do their own per-table invalidation.
// Templates and compiled plans over other tables stay warm.
func (ss *ShardedServer) InvalidateTable(name string) {
	ss.cmu.Lock()
	ss.epochs[name]++
	ss.cmu.Unlock()
	ss.coord.InvalidateTable(name)
	for _, sh := range ss.shards {
		sh.InvalidateTable(name)
	}
}

// Ingest applies a catalog mutation (typically bat.AppendDelta calls against
// the global and shard tables) and invalidates the named tables. The write
// lock excludes cold compiles while the mutation runs — in-flight warm
// executions are unaffected, they read compile-time snapshots — and the
// epoch bumps afterwards retire exactly the plans that read the mutated
// tables. Queries executing concurrently with Ingest see either the old or
// the new generation, never a mix; queries arriving after Ingest returns
// see the new rows.
func (ss *ShardedServer) Ingest(tables []string, apply func()) {
	ss.ingestMu.Lock()
	apply()
	ss.ingestMu.Unlock()
	for _, tab := range tables {
		ss.InvalidateTable(tab)
	}
}
