package bench

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/cl"
	"repro/internal/ops"
)

// The microbenchmarks of §5.2 (Figure 5) and §5.2.7 (Figure 6). Each was
// derived in the paper by piping a one-operator SQL query through EXPLAIN
// and stripping the plan; here each is the single operator call, measured
// per configuration over synthetic uniform data.

// sweepBySize runs a per-size experiment: build(rows) prepares the inputs,
// op performs the measured operator call.
func sweepBySize(id, title string, opt Options,
	build func(rows int, seed int64) []*bat.BAT,
	op func(o ops.Operators, inputs []*bat.BAT) error) *Report {

	opt = opt.withDefaults()
	xs := make([]float64, len(opt.SizesMB))
	for i, mb := range opt.SizesMB {
		xs[i] = float64(mb)
	}
	r := newReport(id, title, "size[MB]", xs, opt.Configs)
	for i, mb := range opt.SizesMB {
		inputs := build(mb*rowsPerMB, opt.Seed+int64(i))
		for _, cfg := range opt.Configs {
			o := engineFor(cfg, opt)
			d, err := Measure(o, opt.Runs, func() error { return op(o, inputs) })
			retire(o)
			if err != nil {
				if errors.Is(err, cl.ErrOutOfDeviceMemory) {
					// The GPU line "ends midway" (§5.2): leave NaN.
					continue
				}
				r.Notes = append(r.Notes, fmt.Sprintf("%v at %dMB: %v", cfg, mb, err))
				continue
			}
			r.Millis[cfg.String()][i] = float64(d.Microseconds()) / 1000
		}
		for _, b := range inputs {
			b.Free()
		}
	}
	return r
}

// Fig5a — range selection scaled by input size, selectivity 0.05.
func Fig5a(opt Options) *Report {
	return sweepBySize("Fig 5(a)", "Range selection scaled by input size (sel 0.05)", opt,
		func(rows int, seed int64) []*bat.BAT {
			return []*bat.BAT{uniformI32("col", rows, 1000, seed)}
		},
		func(o ops.Operators, in []*bat.BAT) error {
			res, err := o.Select(in[0], nil, 0, 49, true, true)
			releaseAll(o, res)
			return err
		})
}

// Fig5b — range selection on a fixed column, scaled by selectivity. The
// flat Ocelot lines against the growing MonetDB lines are the bitmap-vs-
// oid-materialisation effect of §5.2.1.
func Fig5b(opt Options) *Report {
	opt = opt.withDefaults()
	selectivities := []float64{0.15, 0.30, 0.45, 0.60, 0.75}
	xs := make([]float64, len(selectivities))
	for i, s := range selectivities {
		xs[i] = s * 100
	}
	r := newReport("Fig 5(b)", fmt.Sprintf("Range selection scaled by selectivity (%dMB column)", opt.BaseMB),
		"sel[%]", xs, opt.Configs)
	col := uniformI32("col", opt.BaseMB*rowsPerMB, 1000, opt.Seed)
	defer col.Free()
	for i, sel := range selectivities {
		hi := sel*1000 - 1
		for _, cfg := range opt.Configs {
			o := engineFor(cfg, opt)
			d, err := Measure(o, opt.Runs, func() error {
				res, err := o.Select(col, nil, 0, hi, true, true)
				releaseAll(o, res)
				return err
			})
			retire(o)
			if err != nil {
				continue
			}
			r.Millis[cfg.String()][i] = float64(d.Microseconds()) / 1000
		}
	}
	return r
}

// Fig5c — left fetch join (projection through a materialised oid list)
// scaled by input size (§5.2.2).
func Fig5c(opt Options) *Report {
	return sweepBySize("Fig 5(c)", "Left fetch join scaled by input size", opt,
		func(rows int, seed int64) []*bat.BAT {
			return []*bat.BAT{iotaOIDs("ids", rows), uniformI32("col", rows, 1<<20, seed)}
		},
		func(o ops.Operators, in []*bat.BAT) error {
			res, err := o.Project(in[0], in[1])
			releaseAll(o, res)
			return err
		})
}

// Fig5d — MIN aggregation scaled by input size (§5.2.3).
func Fig5d(opt Options) *Report {
	return sweepBySize("Fig 5(d)", "Aggregation (min) scaled by input size", opt,
		func(rows int, seed int64) []*bat.BAT {
			return []*bat.BAT{uniformI32("col", rows, 1<<30, seed)}
		},
		func(o ops.Operators, in []*bat.BAT) error {
			res, err := o.Aggr(ops.Min, in[0], nil, 0)
			releaseAll(o, res)
			return err
		})
}

// Fig5e — hash table build scaled by input size, 100 distinct values
// (§5.2.4). The cached table is invalidated between runs so every run pays
// the build.
func Fig5e(opt Options) *Report {
	return sweepBySize("Fig 5(e)", "Hash build scaled by input size (100 distinct)", opt,
		func(rows int, seed int64) []*bat.BAT {
			return []*bat.BAT{uniformI32("col", rows, 100, seed)}
		},
		func(o ops.Operators, in []*bat.BAT) error {
			invalidateHash(o, in[0])
			ht, err := o.BuildHash(in[0])
			if err != nil {
				return err
			}
			invalidateHash(o, in[0])
			ht.Release()
			return nil
		})
}

// Fig5f — hash table build on a fixed column, scaled by distinct values.
// The CPU's atomic same-address contention *decreasing* with more distinct
// values — and the GPU not showing the pattern — is the §5.2.4 observation.
func Fig5f(opt Options) *Report {
	return sweepByDistinct("Fig 5(f)", "Hash build scaled by distinct values", opt,
		func(o ops.Operators, col *bat.BAT) error {
			invalidateHash(o, col)
			ht, err := o.BuildHash(col)
			if err != nil {
				return err
			}
			invalidateHash(o, col)
			ht.Release()
			return nil
		})
}

// Fig5g — grouping scaled by input size, 100 groups (§5.2.5).
func Fig5g(opt Options) *Report {
	return sweepBySize("Fig 5(g)", "Grouping scaled by input size (100 groups)", opt,
		func(rows int, seed int64) []*bat.BAT {
			return []*bat.BAT{uniformI32("col", rows, 100, seed)}
		},
		func(o ops.Operators, in []*bat.BAT) error {
			res, _, err := o.Group(in[0], nil, 0)
			releaseAll(o, res)
			return err
		})
}

// Fig5h — grouping on a fixed column, scaled by group count.
func Fig5h(opt Options) *Report {
	return sweepByDistinct("Fig 5(h)", "Grouping scaled by distinct values", opt,
		func(o ops.Operators, col *bat.BAT) error {
			res, _, err := o.Group(col, nil, 0)
			releaseAll(o, res)
			return err
		})
}

// Fig5i — PK-FK hash join probe scaled by probe size, build side fixed at
// 100 keys; build time excluded as in the paper (§5.2.6).
func Fig5i(opt Options) *Report {
	opt = opt.withDefaults()
	xs := make([]float64, len(opt.SizesMB))
	for i, mb := range opt.SizesMB {
		xs[i] = float64(mb)
	}
	r := newReport("Fig 5(i)", "Hash join probe scaled by input size (build fixed, 100 keys)",
		"size[MB]", xs, opt.Configs)
	build := uniformI32("build", 100, 1<<30, opt.Seed)
	// Make the build side a key column (distinct values).
	bv := build.I32s()
	for i := range bv {
		bv[i] = int32(i * 7)
	}
	build.Props.Key = true
	defer build.Free()

	for i, mb := range opt.SizesMB {
		rows := mb * rowsPerMB
		probe := uniformI32("probe", rows, 100, opt.Seed+int64(i))
		pv := probe.I32s()
		for j := range pv {
			pv[j] *= 7 // every probe hits a build key: PK-FK
		}
		for _, cfg := range opt.Configs {
			o := engineFor(cfg, opt)
			ht, err := o.BuildHash(build)
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("%v build: %v", cfg, err))
				continue
			}
			d, err := Measure(o, opt.Runs, func() error {
				l, rres, err := o.HashProbe(probe, ht)
				releaseAll(o, l, rres)
				return err
			})
			ht.Release()
			retire(o)
			if err != nil {
				if errors.Is(err, cl.ErrOutOfDeviceMemory) {
					continue
				}
				r.Notes = append(r.Notes, fmt.Sprintf("%v at %dMB: %v", cfg, mb, err))
				continue
			}
			r.Millis[cfg.String()][i] = float64(d.Microseconds()) / 1000
		}
		probe.Free()
	}
	return r
}

// Fig6 — sort scaled by input size: Ocelot's binary radix sort (radix 8 on
// the CPU, 4 on the GPU) against MonetDB's quick/merge sort (§5.2.7).
func Fig6(opt Options) *Report {
	return sweepBySize("Fig 6", "Sort scaled by input size", opt,
		func(rows int, seed int64) []*bat.BAT {
			return []*bat.BAT{uniformI32("col", rows, math.MaxInt32, seed)}
		},
		func(o ops.Operators, in []*bat.BAT) error {
			sorted, order, err := o.Sort(in[0])
			releaseAll(o, sorted, order)
			return err
		})
}

// sweepByDistinct is the shared driver of the Fig. 5(f)/(h) parameter
// sweeps: a fixed-size column, 10..10000 distinct values.
func sweepByDistinct(id, title string, opt Options, op func(o ops.Operators, col *bat.BAT) error) *Report {
	opt = opt.withDefaults()
	distincts := []int{10, 100, 1000, 10000}
	xs := make([]float64, len(distincts))
	for i, d := range distincts {
		xs[i] = float64(d)
	}
	r := newReport(id, fmt.Sprintf("%s (%dMB column)", title, opt.BaseMB), "#distinct", xs, opt.Configs)
	for i, d := range distincts {
		col := uniformI32("col", opt.BaseMB*rowsPerMB, int32(d), opt.Seed+int64(i))
		for _, cfg := range opt.Configs {
			o := engineFor(cfg, opt)
			dur, err := Measure(o, opt.Runs, func() error { return op(o, col) })
			retire(o)
			if err != nil {
				if !errors.Is(err, cl.ErrOutOfDeviceMemory) {
					r.Notes = append(r.Notes, fmt.Sprintf("%v at %d distinct: %v", cfg, d, err))
				}
				continue
			}
			r.Millis[cfg.String()][i] = float64(dur.Microseconds()) / 1000
		}
		col.Free()
	}
	return r
}

// MicroFigures maps figure ids to their generators.
func MicroFigures() map[string]func(Options) *Report {
	return map[string]func(Options) *Report{
		"5a": Fig5a, "5b": Fig5b, "5c": Fig5c, "5d": Fig5d, "5e": Fig5e,
		"5f": Fig5f, "5g": Fig5g, "5h": Fig5h, "5i": Fig5i, "6": Fig6,
	}
}
