// The PR 10 scale-out figure: the TPC-H workload served through the
// sharded scatter-gather path at 1, 2 and 4 shards against the unsharded
// single-engine execution, plus a live-ingest probe (append the tail of
// the instance while the server is warm and measure the recompile cost).
// The figure is self-checking: the sharded path pins fusion off, the MS
// engines are deterministic, and every sharded answer must be
// byte-identical to the unsharded fusion-off reference — a divergence
// panics, because partitioned execution is a pure placement change. No
// counterpart in the paper; like the serving and parallel figures it
// tracks the repository's production trajectory (ROADMAP: scale-out).
package bench

import (
	"fmt"
	"time"

	"repro/internal/mal"
	"repro/internal/ops"
	"repro/internal/serve"
	"repro/internal/tpch"
)

// ShardCounts is the scale-out sweep of the shard figure.
var ShardCounts = []int{1, 2, 4}

// shardedServer assembles a coordinator plus n shard engines of one
// configuration over the catalog.
func shardedServer(cfg mal.Config, o TPCHOptions, sdb *tpch.ShardedDB, n int) *serve.ShardedServer {
	engs := make([]ops.Operators, n)
	for i := range engs {
		engs[i] = engineFor(cfg, o.Options)
	}
	return serve.NewSharded(engineFor(cfg, o.Options), engs, sdb.Catalog(),
		serve.Options{MaxConcurrent: n + 1})
}

// ShardFigure sweeps the workload over the shard counts.
//
// Baseline: every query unsharded on one MS engine with fusion off — the
// pass set the sharded path pins — so the identity check compares like
// against like. Sharded series: per query, one cold run compiles the
// scatter-gather plan, then Runs warm scatters are averaged; each warm
// answer is checked byte-identical against the baseline. Afterwards a
// 2-shard server takes a live append of the instance's last fifth while
// warm, and the note records the ingest wall time and that exactly the
// appended tables' plans recompiled.
func ShardFigure(o TPCHOptions) *QueryReport {
	o = defaultTPCH(o, 0.05)
	queries := tpch.Queries()
	rep := &QueryReport{
		ID:      "shard",
		Title:   fmt.Sprintf("sharded scale-out, TPC-H SF %g (MS engines, fusion off)", o.SF),
		Seconds: map[string][]float64{},
	}
	for _, q := range queries {
		rep.Queries = append(rep.Queries, q.Num)
	}
	unfused := mal.DefaultPasses()
	unfused.Fusion = false

	// --- unsharded baseline and byte-identity reference ---
	// GenerateSharded derives every shard count from this same generation,
	// so one baseline serves the whole sweep.
	db := tpch.Generate(o.SF, o.Seed)
	baseEng := engineFor(mal.MS, o.Options)
	const base = "MS base"
	rep.Order = append(rep.Order, base)
	refs := map[int]*mal.Result{}
	for _, q := range queries {
		q := q
		run := func() *mal.Result {
			s := mal.NewSession(baseEng)
			s.SetPasses(unfused)
			res, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result {
				return q.Plan(s, db)
			})
			if err != nil {
				panic(fmt.Sprintf("bench: Q%d baseline: %v", q.Num, err))
			}
			return res
		}
		refs[q.Num] = run() // warm-up doubles as the reference
		var total time.Duration
		for r := 0; r < o.Runs; r++ {
			start := time.Now()
			res := run()
			total += time.Since(start)
			if err := res.EqualWithin(refs[q.Num], 0); err != nil {
				panic(fmt.Sprintf("bench: Q%d: MS baseline not reproducible: %v", q.Num, err))
			}
		}
		rep.Seconds[base] = append(rep.Seconds[base], total.Seconds()/float64(o.Runs))
	}

	// --- the scale-out sweep ---
	for _, n := range ShardCounts {
		sdb := tpch.GenerateSharded(o.SF, o.Seed, 0, n)
		ss := shardedServer(mal.MS, o, sdb, n)
		label := fmt.Sprintf("MS n=%d", n)
		rep.Order = append(rep.Order, label)
		for _, q := range queries {
			q := q
			plan := func(s *mal.Session) *mal.Result { return q.Plan(s, sdb.Global) }
			name := fmt.Sprintf("Q%d", q.Num)
			if _, err := ss.Execute(name, nil, plan); err != nil { // cold: compile
				panic(fmt.Sprintf("bench: Q%d n=%d cold: %v", q.Num, n, err))
			}
			var total time.Duration
			for r := 0; r < o.Runs; r++ {
				start := time.Now()
				res, err := ss.Execute(name, nil, plan)
				if err != nil {
					panic(fmt.Sprintf("bench: Q%d n=%d: %v", q.Num, n, err))
				}
				total += time.Since(start)
				if err := res.EqualWithin(refs[q.Num], 0); err != nil {
					panic(fmt.Sprintf("bench: Q%d at %d shards diverges from unsharded: %v", q.Num, n, err))
				}
			}
			rep.Seconds[label] = append(rep.Seconds[label], total.Seconds()/float64(o.Runs))
		}
		st := ss.Stats()
		if st.Fallbacks != 0 {
			panic(fmt.Sprintf("bench: %d scatter fallbacks at %d shards: shard executions failing silently", st.Fallbacks, n))
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("n=%d: %d scattered / %d degenerate warm runs, %d cold compiles",
			n, st.Scattered, st.Degenerate, st.ColdCompiles))
	}
	rep.Notes = append(rep.Notes, "self-check: every sharded answer byte-identical to the unsharded fusion-off baseline")

	// --- live-ingest probe at 2 shards ---
	full := tpch.GenerateSkewed(o.SF, o.Seed, 0)
	pre := tpch.PrefixDB(full, full.Orders.Rows()*4/5)
	sdb := tpch.ShardDB(pre, 2)
	ss := shardedServer(mal.MS, o, sdb, 2)
	q6 := *tpch.QueryByNum(6)
	plan := func(s *mal.Session) *mal.Result { return q6.Plan(s, sdb.Global) }
	for r := 0; r < 2; r++ { // cold + warm
		if _, err := ss.Execute("Q6", nil, plan); err != nil {
			panic(fmt.Sprintf("bench: ingest warm-up: %v", err))
		}
	}
	start := time.Now()
	ss.Ingest(tpch.ShardTables(), func() { sdb.AppendTail(full) })
	ingestWall := time.Since(start)
	res, err := ss.Execute("Q6", nil, plan)
	if err != nil {
		panic(fmt.Sprintf("bench: post-ingest Q6: %v", err))
	}
	s := mal.NewSession(baseEng)
	s.SetPasses(unfused)
	ref, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result { return q6.Plan(s, full) })
	if err != nil {
		panic(fmt.Sprintf("bench: post-ingest reference: %v", err))
	}
	if err := res.EqualWithin(ref, 0); err != nil {
		panic(fmt.Sprintf("bench: post-ingest Q6 diverges from full instance: %v", err))
	}
	st := ss.Stats()
	if st.Recompiles == 0 {
		panic("bench: ingest did not retire the compiled plan")
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"live ingest (n=2): appended last 20%% of orders in %v, %d plan recompiles, post-append Q6 byte-identical to the full instance",
		ingestWall.Round(time.Microsecond), st.Recompiles))
	return rep
}
