// The memory-pressure figure: the TPC-H workload with the partition-wise
// spilling join forced on, against the in-memory join on identical
// hardware, as the scale factor sweeps. It has no counterpart in the paper
// — §5.1 sizes every run to fit — and tracks the repository's robustness
// trajectory: spilling must stay correct at every scale and its overhead
// must be a bounded constant factor, not a cliff. A CPU-only run anchors
// the floor. Every mode must return the same rows; the figure verifies
// that on the fly and reports per-query seconds per (scale factor, mode).
package bench

import (
	"fmt"

	"repro/internal/mal"
	"repro/internal/tpch"
)

// SpillSFs is the figure's scale-factor sweep; device memory stays fixed.
var SpillSFs = []float64{0.005, 0.01, 0.02}

// SpillForcedBudget is the per-join device budget of the partition-wise
// series: small enough that every real join in the workload partitions, so
// the series prices the spilling machinery itself rather than the luck of
// a particular memory-to-data ratio.
const SpillForcedBudget = 256 << 10

// SpillFigure sweeps the workload over SpillSFs and, per scale factor, runs
// three modes on fixed hardware: the in-memory GPU baseline, the same GPU
// with every join forced through the partition-wise spilling path
// (SpillForcedBudget), and the CPU driver (which never spills — it computes
// in host memory). Results are cross-checked against the in-memory run per
// query; a divergence beyond float-atomics jitter aborts the figure —
// spilling is an execution strategy, never a semantics change.
func SpillFigure(o TPCHOptions) *QueryReport {
	if o.GPUMemory == 0 {
		o.GPUMemory = 2 << 30 // the paper's 2 GB card, fixed across the sweep
	}
	o = defaultTPCH(o, SpillSFs[0])

	rep := &QueryReport{
		ID: "spill",
		Title: fmt.Sprintf("Memory pressure: TPC-H sweep, in-memory vs partition-wise (%d KiB join budget) vs CPU",
			SpillForcedBudget>>10),
		Seconds: map[string][]float64{},
		Notes:   []string{"seconds per query; in-memory GPU is the per-query byte-identity reference"},
	}
	for _, q := range tpch.Queries() {
		rep.Queries = append(rep.Queries, q.Num)
	}

	var spillFired bool
	for _, sf := range SpillSFs {
		db := tpch.Generate(sf, o.Seed)
		queries := tpch.Queries()

		type mode struct {
			label  string
			cfg    mal.Config
			budget int64
		}
		modes := []mode{
			{fmt.Sprintf("mem sf=%g", sf), mal.OcelotGPU, 0},
			{fmt.Sprintf("spl sf=%g", sf), mal.OcelotGPU, SpillForcedBudget},
			{fmt.Sprintf("CPU sf=%g", sf), mal.OcelotCPU, 0},
		}
		reference := make([]*mal.Result, len(queries))
		for _, m := range modes {
			rep.Order = append(rep.Order, m.label)
			series := make([]float64, len(queries))
			rep.Seconds[m.label] = series

			eng := m.cfg.Build(mal.ConfigOptions{
				Threads:        o.Threads,
				GPUMemory:      o.GPUMemory,
				CPULaunchPause: o.CPULaunchPause,
			})
			if m.budget != 0 {
				mal.SetSpillBudget(eng, m.budget)
			}
			for i, q := range queries {
				q := q
				var last *mal.Result
				avg, err := Measure(eng, o.Runs, func() error {
					s := mal.NewSession(eng)
					res, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result { return q.Plan(s, db) })
					last = res
					return err
				})
				if err != nil {
					panic(fmt.Sprintf("bench: Q%d %s: %v", q.Num, m.label, err))
				}
				series[i] = avg.Seconds()
				if reference[i] == nil {
					reference[i] = last
				} else if err := last.EqualWithin(reference[i], 0); err != nil {
					if err2 := last.EqualWithin(reference[i], 1e-5); err2 != nil {
						panic(fmt.Sprintf("bench: Q%d %s diverges from in-memory: %v", q.Num, m.label, err2))
					}
				}
			}
			joins, parts, bytes := mal.SpillStats(eng)
			if m.budget != 0 && joins == 0 {
				panic(fmt.Sprintf("bench: %s never spilled — the forced budget does not bind", m.label))
			}
			if joins > 0 {
				spillFired = true
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s: %d spilling joins, %d partitions, %.1f MB staged through host",
					m.label, joins, parts, float64(bytes)/(1<<20)))
			}
		}
	}
	if !spillFired {
		panic("bench: spill figure never spilled")
	}
	return rep
}
