package bench

import (
	"fmt"
	"time"

	"repro/internal/mal"
	"repro/internal/ops"
	"repro/internal/tpch"
)

// The TPC-H experiments of §5.3 (Figure 7). The paper runs scale factors
// 1, 8 and 50; the defaults here are scaled down proportionally (see
// EXPERIMENTS.md) while preserving the three regimes:
//
//   - small     (7a): everything fits on the GPU — Ocelot-GPU leads,
//     Ocelot-CPU pays the fixed framework overhead;
//   - middle    (7b): the working set exceeds device memory — the Memory
//     Manager swaps, transfers eat the GPU lead;
//   - large     (7c): CPU configurations only, Ocelot-CPU competitive.
//
// TPCHOptions extends Options with the figure's scale factor and a device
// memory expressed relative to the database size.
type TPCHOptions struct {
	Options
	// SF is the TPC-H scale factor of this experiment.
	SF float64
	// GPUMemFraction sizes the simulated device memory as a fraction of
	// the database bytes; 0 keeps Options.GPUMemory.
	GPUMemFraction float64
}

// defaultTPCH fills in the figure defaults.
func defaultTPCH(o TPCHOptions, sf float64) TPCHOptions {
	if o.SF == 0 {
		o.SF = sf
	}
	if o.Runs == 0 {
		o.Runs = 3 // the paper averages 5 runs; 3 keeps the harness quick
	}
	if o.CPULaunchPause == 0 {
		// The per-launch stand-in for the Intel SDK's fixed overhead
		// (§5.3.2); visible at small scale, amortised at large scale.
		o.CPULaunchPause = 30 * time.Microsecond
	}
	o.Options = o.Options.withDefaults()
	return o
}

// QueryReport is one TPC-H figure: per-query runtimes per configuration.
type QueryReport struct {
	ID, Title string
	Queries   []int
	// Seconds[config][i] is query Queries[i]'s average runtime.
	Seconds map[string][]float64
	Order   []string
	Notes   []string
}

// String renders the figure as an aligned text table (seconds, like the
// paper's bar charts).
func (r *QueryReport) String() string {
	out := fmt.Sprintf("# %s — %s\n%-8s", r.ID, r.Title, "query")
	for _, c := range r.Order {
		out += fmt.Sprintf("%12s", c+" [s]")
	}
	out += "\n"
	for i, q := range r.Queries {
		out += fmt.Sprintf("Q%-7d", q)
		for _, c := range r.Order {
			v := r.Seconds[c][i]
			if v < 0 {
				out += fmt.Sprintf("%12s", "-")
			} else {
				out += fmt.Sprintf("%12.4f", v)
			}
		}
		out += "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// runTPCH executes the whole workload under the given configurations with a
// hot cache (each query runs once unmeasured, then Runs measured times).
func runTPCH(id, title string, opt TPCHOptions) *QueryReport {
	db := tpch.Generate(opt.SF, opt.Seed)
	if opt.GPUMemFraction > 0 {
		opt.GPUMemory = int64(float64(db.TotalBytes()) * opt.GPUMemFraction)
	}
	rep := &QueryReport{ID: id, Title: title}
	rep.Seconds = map[string][]float64{}
	for _, c := range opt.Configs {
		rep.Order = append(rep.Order, c.String())
		rep.Seconds[c.String()] = nil
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("SF=%g (%d lineitems, %.1f MB database), %d runs, hot cache",
			opt.SF, db.Lineitem.Rows(), float64(db.TotalBytes())/(1<<20), opt.Runs))

	engines := make(map[mal.Config]ops.Operators, len(opt.Configs))
	for _, c := range opt.Configs {
		engines[c] = engineFor(c, opt.Options)
	}

	for _, q := range tpch.Queries() {
		rep.Queries = append(rep.Queries, q.Num)
		for _, cfg := range opt.Configs {
			o := engines[cfg]
			d, err := Measure(o, opt.Runs, func() error {
				s := mal.NewSession(o)
				_, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result {
					return q.Plan(s, db)
				})
				return err
			})
			if err != nil {
				rep.Notes = append(rep.Notes, fmt.Sprintf("Q%d on %v: %v", q.Num, cfg, err))
				rep.Seconds[cfg.String()] = append(rep.Seconds[cfg.String()], -1)
				continue
			}
			rep.Seconds[cfg.String()] = append(rep.Seconds[cfg.String()], d.Seconds())
		}
	}
	return rep
}

// Fig7a — TPC-H at the small scale factor, all four configurations
// (paper: SF 1).
func Fig7a(opt TPCHOptions) *QueryReport {
	opt = defaultTPCH(opt, 0.05)
	if opt.GPUMemFraction == 0 {
		opt.GPUMemFraction = 4 // comfortably fits: the 7a regime
	}
	return runTPCH("Fig 7(a)", "TPC-H performance, small scale (paper: SF 1)", opt)
}

// Fig7b — TPC-H at the intermediate scale: the simulated GPU's memory is
// set below the working set so the Memory Manager must swap (paper: SF 8,
// "the largest instance we could run on the graphics card").
func Fig7b(opt TPCHOptions) *QueryReport {
	opt = defaultTPCH(opt, 0.2)
	if opt.GPUMemFraction == 0 {
		// Below the working set (swapping throughout) yet above the floor
		// of the largest single query — the paper's "largest instance we
		// could run on the graphics card" regime.
		opt.GPUMemFraction = 0.7
	}
	return runTPCH("Fig 7(b)", "TPC-H performance, intermediate scale with GPU memory pressure (paper: SF 8)", opt)
}

// Fig7c — TPC-H at the large scale, CPU configurations only (paper: SF 50,
// which "could not use the graphics card").
func Fig7c(opt TPCHOptions) *QueryReport {
	opt = defaultTPCH(opt, 0.5)
	cpuOnly := make([]mal.Config, 0, 3)
	for _, c := range opt.Configs {
		if c != mal.OcelotGPU {
			cpuOnly = append(cpuOnly, c)
		}
	}
	opt.Configs = cpuOnly
	return runTPCH("Fig 7(c)", "TPC-H performance, large scale, CPU configurations (paper: SF 50)", opt)
}

// Fig7d — Q1 runtime against the scale factor: all configurations scale
// linearly; extrapolating the Ocelot-CPU line to an empty database exposes
// the constant framework overhead (§5.3.2).
func Fig7d(opt TPCHOptions) *Report {
	opt = defaultTPCH(opt, 0)
	sfs := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	xs := make([]float64, len(sfs))
	copy(xs, sfs)
	r := newReport("Fig 7(d)", "TPC-H Q1 scaling with the scale factor", "SF", xs, opt.Configs)
	q1 := tpch.QueryByNum(1)
	for i, sf := range sfs {
		db := tpch.Generate(sf, opt.Seed)
		for _, cfg := range opt.Configs {
			o := engineFor(cfg, opt.Options)
			d, err := Measure(o, opt.Runs, func() error {
				s := mal.NewSession(o)
				_, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result {
					return q1.Plan(s, db)
				})
				return err
			})
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("%v at SF %g: %v", cfg, sf, err))
				continue
			}
			r.Millis[cfg.String()][i] = float64(d.Microseconds()) / 1000
		}
	}
	return r
}
