// The PR 9 adaptive-execution figure: plan wall time of the TPC-H workload
// on a multi-GPU hybrid engine under cardinality mis-estimation. Skewed
// data breaks the fixed-constant estimates the placement pass was built on
// (the /3 selectivity guess, the symbolic group-count constant); the figure
// measures what each adaptive mechanism buys back — load-time column
// statistics plus observed-cardinality feedback steering placement, and
// mid-query re-planning abandoning a mis-priced pinned tail — on uniform
// and Zipf-skewed instances of the same schema. Like the serving and
// parallel figures it has no counterpart in the paper; it tracks the
// repository's robustness trajectory (ROADMAP: mis-estimate-robust
// execution).
package bench

import (
	"fmt"

	"repro/internal/mal"
	"repro/internal/tpch"
)

// AdaptZipfTheta is the Zipf exponent of the figure's skewed dataset
// (cmd/ocelotbench's -skew flag overrides it).
var AdaptZipfTheta = 1.1

// adaptMode is one cell of the feedback × re-planning grid.
type adaptMode struct {
	label    string
	feedback bool
	replan   float64 // re-plan threshold; 0 disables
}

// adaptModes is the figure's mode grid. "fix" is the honest baseline: the
// estimator falls back to its historical fixed constants, exactly as before
// adaptive execution existed. Re-planning runs at threshold 1 so any
// mis-estimate at all abandons the tail — the forced setting that makes the
// mechanism visible at bench scale.
var adaptModes = []adaptMode{
	{"fix", false, 0},
	{"rpl", false, 1},
	{"fb", true, 0},
	{"f+r", true, 1},
}

// AdaptFigure measures the workload per dataset (uniform, Zipf) and mode
// (feedback off/on × re-planning off/on) on a hybrid engine with at least
// two GPUs. Per query the template is built cold, warmed with one replay
// (where the once-per-template adapt pass runs), then measured over warm
// replays — the steady state a served query lives in. Every mode must be
// byte-identical to the fixed-constant baseline (adaptation only moves
// pins), and with the verifier on, the measured replays must never
// re-enter it: warm feedback means accurate expectations, so nothing
// re-plans and nothing re-verifies.
func AdaptFigure(o TPCHOptions) *QueryReport {
	if o.GPUs < 2 {
		o.GPUs = 2
	}
	o = defaultTPCH(o, 0.02)
	queries := tpch.Queries()

	fbWas, thrWas := mal.DefaultFeedback(), mal.DefaultReplanThreshold()
	defer func() {
		mal.SetDefaultFeedback(fbWas)
		mal.SetDefaultReplanThreshold(thrWas)
	}()

	rep := &QueryReport{
		ID: "adapt",
		Title: fmt.Sprintf("Adaptive execution: TPC-H SF %g, HYB g=%d, uniform vs Zipf θ=%g",
			o.SF, o.GPUs, AdaptZipfTheta),
		Seconds: map[string][]float64{},
		Notes: []string{
			"seconds per query, warm template replays; fix = fixed-constant estimation baseline",
			"rpl = mid-query re-planning (threshold 1x), fb = stats+feedback placement, f+r = both",
		},
	}
	for _, q := range queries {
		rep.Queries = append(rep.Queries, q.Num)
	}

	datasets := []struct {
		tag   string
		theta float64
	}{{"u", 0}, {"z", AdaptZipfTheta}}

	replansFired := 0
	for _, ds := range datasets {
		db := tpch.GenerateSkewed(o.SF, o.Seed, ds.theta)
		eng := mal.Hybrid.Build(mal.ConfigOptions{
			Threads:   o.Threads,
			GPUMemory: o.GPUMemory,
			GPUs:      o.GPUs,
		})
		reference := make([]*mal.Result, len(queries))
		totals := map[string]float64{}
		for _, m := range adaptModes {
			label := fmt.Sprintf("%s %s", ds.tag, m.label)
			rep.Order = append(rep.Order, label)
			series := make([]float64, len(queries))
			rep.Seconds[label] = series

			mal.SetDefaultFeedback(m.feedback)
			mal.SetDefaultReplanThreshold(m.replan)
			for i, q := range queries {
				q := q
				s := mal.NewSession(eng)
				if _, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result { return q.Plan(s, db) }); err != nil {
					panic(fmt.Sprintf("bench: Q%d %s build: %v", q.Num, label, err))
				}
				tpl := s.Template()
				// Reach steady state before measuring: the first replay of a
				// feedback mode runs the once-per-template adapt pass.
				if _, err := tpl.Run(eng, nil); err != nil {
					panic(fmt.Sprintf("bench: Q%d %s warm-up replay: %v", q.Num, label, err))
				}
				verifyBase := mal.VerifyRuns()
				var last *mal.Result
				avg, err := Measure(eng, o.Runs, func() error {
					res, sess, err := tpl.RunOn(eng, nil)
					last = res
					replansFired += sess.Replans()
					return err
				})
				if err != nil {
					panic(fmt.Sprintf("bench: Q%d %s: %v", q.Num, label, err))
				}
				series[i] = avg.Seconds()
				totals[m.label] += avg.Seconds()
				if reference[i] == nil {
					reference[i] = last
				} else if err := last.EqualWithin(reference[i], 0); err != nil {
					if err2 := last.EqualWithin(reference[i], 1e-5); err2 != nil {
						panic(fmt.Sprintf("bench: Q%d %s diverges from the fixed baseline: %v", q.Num, label, err2))
					}
				}
				// Verify-once-per-template: warm replays never re-enter the
				// full verifier regardless of mode; re-plan verification is
				// accounted separately (ReplanVerifyRuns).
				if mal.DefaultVerify() {
					if d := mal.VerifyRuns() - verifyBase; d != 0 {
						panic(fmt.Sprintf("bench: Q%d %s: warm replays ran the verifier %d times, want 0", q.Num, label, d))
					}
				}
			}
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: workload totals fix %.3fs, rpl %.3fs, fb %.3fs, f+r %.3fs",
			map[string]string{"u": "uniform", "z": "zipf"}[ds.tag],
			totals["fix"], totals["rpl"], totals["fb"], totals["f+r"]))
	}
	if replansFired == 0 {
		panic("bench: adapt figure never re-planned a tail (threshold 1x should force it)")
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%d tail re-plans across the re-planning modes; %d re-plan verifier runs process-wide",
		replansFired, mal.ReplanVerifyRuns()))
	return rep
}
