// Serving-layer figures: the plan-cache rebind-and-run experiment and the
// concurrent-throughput sweep. Neither has a counterpart in the paper —
// they track the repository's production-serving trajectory (ROADMAP: plan
// cache, batched/concurrent sessions) the same way the Figure 5/6/7
// regenerations track the paper's evaluation.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/mal"
	"repro/internal/serve"
	"repro/internal/tpch"
)

// PlanCacheReport records the cold-build vs cache-hit comparison for one
// TPC-H query: end-to-end wall time and the host-side overhead (wall minus
// the summed per-instruction operator time) for both paths, per
// configuration.
type PlanCacheReport struct {
	ID, Title string
	Query     int
	// Nanos maps "<config> <metric>" to nanoseconds, metrics being
	// cold_wall, hit_wall, cold_overhead, hit_overhead (medians over runs).
	Nanos map[string]int64
	Order []string
	Notes []string
}

// String renders the comparison table.
func (r *PlanCacheReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "%-8s %14s %14s %14s %14s\n", "config", "cold wall", "hit wall", "cold overhead", "hit overhead")
	for _, c := range r.Order {
		fmt.Fprintf(&sb, "%-8s %14v %14v %14v %14v\n", c,
			time.Duration(r.Nanos[c+" cold_wall"]),
			time.Duration(r.Nanos[c+" hit_wall"]),
			time.Duration(r.Nanos[c+" cold_overhead"]),
			time.Duration(r.Nanos[c+" hit_overhead"]))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// JSON converts the report to a trajectory record.
func (r *PlanCacheReport) JSON(bytesAlloc, allocsOp int64) FigureJSON {
	out := FigureJSON{ID: r.ID, Title: r.Title, MedianNsPerOp: map[string]int64{}, BytesAlloc: bytesAlloc, AllocsOp: allocsOp}
	for k, v := range r.Nanos {
		out.MedianNsPerOp[k] = v
	}
	return out
}

func median64(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := s[len(s)/2]
	if len(s)%2 == 0 {
		mid = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return mid
}

// PlanCacheFigure measures, per configuration, re-running one TPC-H query
// (Q6 by default) cold — plan function, IR build, full rewriter pipeline —
// against replaying its cached template with parameters re-bound. The
// headline number is host-side overhead: wall time minus the summed
// operator dispatch time, i.e. what the MAL layer itself costs around the
// operators.
func PlanCacheFigure(o TPCHOptions) *PlanCacheReport {
	o = defaultTPCH(o, 0.01)
	db := tpch.Generate(o.SF, o.Seed)
	q := tpch.QueryByNum(6)
	plan := func(s *mal.Session) *mal.Result { return q.Plan(s, db) }

	rep := &PlanCacheReport{
		ID:    "pc",
		Title: fmt.Sprintf("plan cache: cold build vs rebind-and-run, TPC-H Q%d, SF %g", q.Num, o.SF),
		Query: q.Num,
		Nanos: map[string]int64{},
		Notes: []string{"overhead = wall - summed operator dispatch time (host-side cost of the MAL layer)"},
	}
	for _, cfg := range o.Configs {
		eng := cfg.Build(mal.ConfigOptions{Threads: o.Threads, GPUMemory: o.GPUMemory})
		label := cfg.String()
		rep.Order = append(rep.Order, label)

		var coldWall, coldOver, hitWall, hitOver []int64
		var tpl *mal.Template
		for run := 0; run < o.Runs+1; run++ {
			s := mal.NewSession(eng)
			start := time.Now()
			if _, err := mal.RunQuery(s, plan); err != nil {
				panic(fmt.Sprintf("bench: cold Q%d on %s: %v", q.Num, label, err))
			}
			wall := time.Since(start)
			if run == 0 {
				tpl = s.Template() // warm-up run also captures the template
				continue
			}
			coldWall = append(coldWall, int64(wall))
			coldOver = append(coldOver, int64(wall-s.OpTime()))
		}
		for run := 0; run < o.Runs; run++ {
			start := time.Now()
			_, s, err := tpl.RunOn(eng, nil)
			if err != nil {
				panic(fmt.Sprintf("bench: cached Q%d on %s: %v", q.Num, label, err))
			}
			wall := time.Since(start)
			hitWall = append(hitWall, int64(wall))
			hitOver = append(hitOver, int64(wall-s.OpTime()))
		}
		rep.Nanos[label+" cold_wall"] = median64(coldWall)
		rep.Nanos[label+" hit_wall"] = median64(hitWall)
		rep.Nanos[label+" cold_overhead"] = median64(coldOver)
		rep.Nanos[label+" hit_overhead"] = median64(hitOver)
	}
	return rep
}

// ServeReport records workload throughput through the serving layer at
// several concurrency levels.
type ServeReport struct {
	ID, Title string
	// NsPerQuery maps "<config> N=<n>" to average wall nanoseconds per
	// completed query; QPS the corresponding queries/second.
	NsPerQuery map[string]int64
	QPS        map[string]float64
	Order      []string
	Notes      []string
}

// String renders the throughput table.
func (r *ServeReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "%-14s %14s %12s\n", "series", "ns/query", "queries/s")
	for _, k := range r.Order {
		fmt.Fprintf(&sb, "%-14s %14d %12.1f\n", k, r.NsPerQuery[k], r.QPS[k])
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// JSON converts the report to a trajectory record.
func (r *ServeReport) JSON(bytesAlloc, allocsOp int64) FigureJSON {
	out := FigureJSON{ID: r.ID, Title: r.Title, MedianNsPerOp: map[string]int64{}, BytesAlloc: bytesAlloc, AllocsOp: allocsOp}
	for k, v := range r.NsPerQuery {
		out.MedianNsPerOp[k] = v
	}
	return out
}

// ServeConcurrencies is the figure's sweep of client counts.
var ServeConcurrencies = []int{1, 4, 16}

// ServeFigure drives the full 14-query workload through a serve.Server per
// configuration at N=1, 4 and 16 concurrent clients (admission cap = client
// count) and reports sustained queries/second. Every (config, N) cell runs
// a sequential warm-up pass first so the plan cache and the device caches
// are hot — the steady-state regime a server lives in.
func ServeFigure(o TPCHOptions) *ServeReport {
	o = defaultTPCH(o, 0.01)
	db := tpch.Generate(o.SF, o.Seed)
	rep := &ServeReport{
		ID:         "srv",
		Title:      fmt.Sprintf("serving throughput: TPC-H workload, SF %g, %d rounds", o.SF, o.Runs),
		NsPerQuery: map[string]int64{},
		QPS:        map[string]float64{},
		Notes:      []string{"N clients against one shared engine, plan cache on, warm-up pass excluded"},
	}
	for _, cfg := range o.Configs {
		for _, n := range ServeConcurrencies {
			key := fmt.Sprintf("%s N=%d", cfg, n)
			ns, qps, errs := serveRun(cfg, db, o, n, o.Runs)
			rep.Order = append(rep.Order, key)
			rep.NsPerQuery[key] = ns
			rep.QPS[key] = qps
			if errs > 0 {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d query executions failed", key, errs))
			}
		}
	}
	return rep
}

// ServeOnce runs the workload through one server at the given concurrency
// and returns the server for stats rendering (the -concurrency CLI mode).
func ServeOnce(cfg mal.Config, o TPCHOptions, clients, rounds int) (*serve.Server, int64, float64) {
	o = defaultTPCH(o, 0.01)
	db := tpch.Generate(o.SF, o.Seed)
	sv, ns, qps := serveWorkload(cfg, db, o, clients, rounds)
	return sv, ns, qps
}

func serveRun(cfg mal.Config, db *tpch.DB, o TPCHOptions, clients, rounds int) (int64, float64, int64) {
	sv, ns, qps := serveWorkload(cfg, db, o, clients, rounds)
	var errs int64
	for _, st := range sv.Stats() {
		errs += st.Errors
	}
	return ns, qps, errs
}

func serveWorkload(cfg mal.Config, db *tpch.DB, o TPCHOptions, clients, rounds int) (*serve.Server, int64, float64) {
	eng := cfg.Build(mal.ConfigOptions{Threads: o.Threads, GPUMemory: o.GPUMemory})
	// NoCoalesce: the figure measures raw execution throughput; the serve
	// coalescing paths get their own figure (par.go).
	sv := serve.New(eng, serve.Options{MaxConcurrent: clients, NoCoalesce: true})
	queries := tpch.Queries()

	// Query errors (e.g. a workload query that cannot run at a tiny scale
	// factor) are recorded in the server's per-query stats — the errs
	// column — rather than aborting the whole run.
	run := func(q tpch.Query) {
		name := fmt.Sprintf("Q%d", q.Num)
		_, _ = sv.Execute(name, nil, func(s *mal.Session) *mal.Result {
			return q.Plan(s, db)
		})
	}
	// Warm-up: populate the plan cache and the device-side base caches.
	for _, q := range queries {
		run(q)
	}

	jobs := make(chan tpch.Query, len(queries)*rounds)
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			jobs <- q
		}
	}
	close(jobs)
	total := len(queries) * rounds

	start := time.Now()
	done := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func() {
			for q := range jobs {
				run(q)
			}
			done <- struct{}{}
		}()
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	wall := time.Since(start)
	ns := wall.Nanoseconds() / int64(total)
	qps := float64(total) / wall.Seconds()
	return sv, ns, qps
}
