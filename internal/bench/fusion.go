// The operator-fusion figure: a fused vs unfused select→project→binop→sum
// chain per configuration. Like the serving figures, it has no counterpart
// in the paper — it tracks the repository's fusion trajectory (ROADMAP:
// "fuse select→project→binop chains into single kernels") the way the
// Figure 5/6/7 regenerations track the paper's evaluation.
package bench

import (
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/ops"
)

// fusConfigs picks the figure's default configurations: the fusion-capable
// engines (plus whatever the user explicitly requested).
func fusConfigs(opt Options) []mal.Config {
	if len(opt.Configs) > 0 {
		return opt.Configs
	}
	return []mal.Config{mal.OcelotCPU, mal.OcelotGPU, mal.Hybrid}
}

// FigFus regenerates the fusion figure: for each configuration and input
// size, the Q6-skeleton chain — one range selection, two projections, one
// multiply, a terminal scalar sum — runs once with the fusion pass on and
// once with it off. MonetDB configurations execute the same unfused chain on
// both rows (they advertise no fusion support), which is the fall-back
// contract made visible.
func FigFus(opt Options) *Report {
	configs := opt.Configs
	opt.Configs = nil
	opt = opt.withDefaults()
	opt.Configs = configs

	xs := make([]float64, len(opt.SizesMB))
	for i, mb := range opt.SizesMB {
		xs[i] = float64(mb)
	}
	r := &Report{
		ID:     "fus",
		Title:  "Operator fusion: select→project→binop→sum chain, fused vs unfused",
		XLabel: "size[MB]",
		Xs:     xs,
		Millis: map[string][]float64{},
	}
	cfgs := fusConfigs(opt)
	for _, cfg := range cfgs {
		for _, variant := range []string{"/fused", "/unfused"} {
			label := cfg.String() + variant
			r.Order = append(r.Order, label)
			series := make([]float64, len(xs))
			for i := range series {
				series[i] = math.NaN()
			}
			r.Millis[label] = series
		}
	}

	for xi, mb := range opt.SizesMB {
		rows := mb * rowsPerMB
		k := uniformI32("k", rows, 1000, opt.Seed+int64(xi))
		a := uniformF32("a", rows, opt.Seed+int64(xi)+100)
		b := uniformF32("b", rows, opt.Seed+int64(xi)+200)
		plan := func(s *mal.Session) *mal.Result {
			sel := s.Select(k, nil, 0, 499, true, true)
			rev := s.Binop(ops.Mul, s.Project(sel, a), s.Project(sel, b))
			return s.Result([]string{"revenue"}, s.Aggr(ops.Sum, rev, nil, 0))
		}
		for _, cfg := range cfgs {
			for _, fused := range []bool{true, false} {
				label := cfg.String() + "/unfused"
				if fused {
					label = cfg.String() + "/fused"
				}
				o := engineFor(cfg, opt)
				passes := mal.DefaultPasses()
				passes.Fusion = fused
				d, err := Measure(o, opt.Runs, func() error {
					s := mal.NewSession(o)
					s.SetPasses(passes)
					_, err := mal.RunQuery(s, plan)
					return err
				})
				retire(o)
				if err != nil {
					r.Notes = append(r.Notes, fmt.Sprintf("%s at %dMB: %v", label, mb, err))
					continue
				}
				r.Millis[label][xi] = float64(d.Microseconds()) / 1000
			}
		}
		k.Free()
		a.Free()
		b.Free()
	}

	// With the verifier on, prove its cost model on the fused chain: the
	// template is verified once while the plan is built and sealed, and
	// cached replays re-enter the verifier zero times — fusion's measured
	// advantage cannot be polluted by verification overhead.
	if mal.DefaultVerify() {
		rows := opt.SizesMB[0] * rowsPerMB
		k := uniformI32("k", rows, 1000, opt.Seed)
		a := uniformF32("a", rows, opt.Seed+100)
		b := uniformF32("b", rows, opt.Seed+200)
		o := engineFor(mal.OcelotCPU, opt)
		s := mal.NewSession(o)
		s.SetVerify(true)
		if _, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result {
			sel := s.Select(k, nil, 0, 499, true, true)
			rev := s.Binop(ops.Mul, s.Project(sel, a), s.Project(sel, b))
			return s.Result([]string{"revenue"}, s.Aggr(ops.Sum, rev, nil, 0))
		}); err != nil {
			panic(fmt.Sprintf("bench: fus verify probe: %v", err))
		}
		tpl := s.Template()
		base := mal.VerifyRuns()
		const replays = 10
		for i := 0; i < replays; i++ {
			if _, err := tpl.Run(o, nil); err != nil {
				panic(fmt.Sprintf("bench: fus verify replay: %v", err))
			}
		}
		if d := mal.VerifyRuns() - base; d != 0 {
			panic(fmt.Sprintf("bench: fus: %d cached replays ran the verifier %d times, want 0", replays, d))
		}
		retire(o)
		k.Free()
		a.Free()
		b.Free()
		r.Notes = append(r.Notes,
			fmt.Sprintf("verifier on: fused template verified once at seal, 0 verifier runs across %d cached replays", replays))
	}
	return r
}

// uniformF32 builds a deterministic uniform float32 column in [0, 1).
func uniformF32(name string, rows int, seed int64) *bat.BAT {
	col := uniformI32(name, rows, 1<<20, seed)
	f := make([]float32, rows)
	for i, v := range col.I32s() {
		f[i] = float32(v) / (1 << 20)
	}
	col.Free()
	return bat.NewF32(name, f)
}
