// Package bench regenerates the paper's evaluation (§5): every
// microbenchmark of Figure 5, the sort experiment of Figure 6, and the
// TPC-H experiments of Figure 7, across the four configurations MS, MP,
// Ocelot-CPU and Ocelot-GPU.
//
// Measurement methodology mirrors the paper: every data point is the
// average of repeated runs after a warm-up run (hot cache, §5.3); on the
// simulated GPU the measured quantity is the span of the device's virtual
// timeline, everything else is wall-clock time (see DESIGN.md's
// substitution table). GPU microbenchmarks exclude host↔device transfers
// (§5.2) because the warm-up run populates the Memory Manager's device
// cache; TPC-H runs include transfer traffic exactly as the paper's hot-
// cache methodology does.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
	"repro/internal/mem"
	"repro/internal/ops"
)

// Options scale the experiments. The zero value selects defaults sized for
// a laptop-class sandbox; flags in cmd/ocelotbench override them.
type Options struct {
	// SizesMB is the input-size sweep of the scaled-by-size experiments
	// (the paper uses 64..1024 MB; defaults are smaller).
	SizesMB []int
	// BaseMB is the fixed column size of the sweep-by-parameter
	// experiments (the paper's 400 MB column).
	BaseMB int
	// Runs is the number of measured repetitions (the paper uses 10 for
	// microbenchmarks, 5 for TPC-H).
	Runs int
	// Threads drives MP and the Ocelot CPU driver.
	Threads int
	// GPUMemory caps the simulated device memory.
	GPUMemory int64
	// GPUs is the simulated GPU count of the Hybrid configuration (<=0
	// selects 1; the ndev figure sweeps it itself).
	GPUs int
	// CPULaunchPause emulates the Intel-SDK per-launch overhead on the
	// Ocelot CPU driver (TPC-H figures only; see Fig. 7d).
	CPULaunchPause time.Duration
	// Configs restricts which configurations run (nil = all four).
	Configs []mal.Config
	// Seed makes the synthetic data deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if len(o.SizesMB) == 0 {
		o.SizesMB = []int{4, 8, 16, 32, 64}
	}
	if o.BaseMB == 0 {
		o.BaseMB = 25 // the paper's 400 MB column, scaled by 1/16
	}
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.GPUMemory == 0 {
		o.GPUMemory = 1 << 30
	}
	if len(o.Configs) == 0 {
		o.Configs = mal.AllConfigs()
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Report is one regenerated figure: a labelled series per configuration
// over a swept x-axis, in milliseconds — the same rows the paper plots.
type Report struct {
	ID, Title string
	XLabel    string
	Xs        []float64
	// Millis[config label][i] is the timing at Xs[i]; NaN marks points a
	// configuration could not run (e.g. the GPU line "ending midway" when
	// the input exceeds device memory, §5.2).
	Millis map[string][]float64
	Order  []string
	Notes  []string
}

func newReport(id, title, xlabel string, xs []float64, configs []mal.Config) *Report {
	r := &Report{ID: id, Title: title, XLabel: xlabel, Xs: xs, Millis: map[string][]float64{}}
	for _, c := range configs {
		label := c.String()
		r.Order = append(r.Order, label)
		series := make([]float64, len(xs))
		for i := range series {
			series[i] = math.NaN()
		}
		r.Millis[label] = series
	}
	return r
}

// String renders the figure as an aligned text table.
func (r *Report) String() string {
	width := 12
	for _, c := range r.Order {
		if w := len(c) + 6; w > width {
			width = w
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "%-12s", r.XLabel)
	for _, c := range r.Order {
		fmt.Fprintf(&sb, "%*s", width, c+" [ms]")
	}
	sb.WriteByte('\n')
	for i, x := range r.Xs {
		fmt.Fprintf(&sb, "%-12g", x)
		for _, c := range r.Order {
			v := r.Millis[c][i]
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, "%*s", width, "-")
			} else {
				fmt.Fprintf(&sb, "%*.3f", width, v)
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Measure times one operation under a configuration: virtual-timeline span
// for the simulated GPU, wall clock otherwise. A warm-up run precedes the
// measured runs (hot cache). The returned duration is the per-run average.
func Measure(o ops.Operators, runs int, op func() error) (time.Duration, error) {
	run := func() (time.Duration, error) {
		if vStart, isGPU := mal.GPUTime(o); isGPU {
			if err := op(); err != nil {
				return 0, err
			}
			if err := mal.Finish(o); err != nil {
				return 0, err
			}
			vEnd, _ := mal.GPUTime(o)
			return vEnd - vStart, nil
		}
		start := time.Now()
		if err := op(); err != nil {
			return 0, err
		}
		if err := mal.Finish(o); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if _, err := run(); err != nil { // warm-up
		return 0, err
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		d, err := run()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(runs), nil
}

// rowsOfMB converts a column size in MB to its int32 row count.
const rowsPerMB = (1 << 20) / 4

// uniformI32 builds a deterministic uniform int32 column.
func uniformI32(name string, rows int, max int32, seed int64) *bat.BAT {
	r := rand.New(rand.NewSource(seed))
	s := mem.AllocI32(rows)
	for i := range s {
		s[i] = r.Int31n(max)
	}
	return bat.NewI32(name, s)
}

// iotaOIDs builds a materialised dense oid list (the probe side of the
// left fetch join microbenchmark).
func iotaOIDs(name string, rows int) *bat.BAT {
	s := mem.AllocU32(rows)
	for i := range s {
		s[i] = uint32(i)
	}
	b := bat.NewOID(name, s)
	b.Props.Sorted, b.Props.Key = true, true
	return b
}

// engineFor builds the operator implementation of a configuration.
func engineFor(c mal.Config, opt Options) ops.Operators {
	return c.Build(mal.ConfigOptions{
		Threads:        opt.Threads,
		GPUMemory:      opt.GPUMemory,
		GPUs:           opt.GPUs,
		CPULaunchPause: opt.CPULaunchPause,
	})
}

// retire drains a configuration's resources after its measurements: Ocelot
// engines hold a persistent per-device worker pool and a scratch free-list,
// and a sweep builds one engine per data point, so draining eagerly keeps
// the harness from carrying parked workers until their idle timeout — or
// pinning retained scratch bytes through the storage layer's free listener.
func retire(o ops.Operators) {
	if eng, ok := o.(*core.Engine); ok {
		eng.Device().Close()
		eng.Memory().FlushScratch()
	}
}

// releaseAll drops intermediates an operation produced.
func releaseAll(o ops.Operators, bats ...*bat.BAT) {
	for _, b := range bats {
		if b != nil {
			o.Release(b)
		}
	}
}

// invalidateHash defeats the Memory Manager's hash-table cache between
// measured build runs.
func invalidateHash(o ops.Operators, col *bat.BAT) {
	if eng, ok := o.(*core.Engine); ok {
		eng.InvalidateHash(col)
	}
}

// sortedKeys returns map keys in sorted order (stable table output).
func sortedKeys[M ~map[string][]float64](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
