// The PR 7 parallel-execution figure: (a) the plan-level parallel scheduler
// against the serial interpreter on multi-GPU hybrid engines — the wall
// time a single session saves by overlapping disjoint device lanes — and
// (b) the serving layer's request coalescing under duplicate-heavy load —
// the super-linear throughput single-flight sharing and slot batching buy
// when many clients ask overlapping questions. Neither has a counterpart in
// the paper; like the serving and N-device figures they track the
// repository's production trajectory (ROADMAP: parallel plan execution,
// shared-work batching).
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mal"
	"repro/internal/ops"
	"repro/internal/serve"
	"repro/internal/tpch"
)

// ParReport records both halves of the figure.
type ParReport struct {
	ID, Title string
	// Nanos maps "HYB g=<gpus> <serial|parallel>" to average plan-wall
	// nanoseconds per workload query.
	Nanos map[string]int64
	// QPS maps "dup=<d>% N=<clients>" to sustained queries/second through a
	// coalescing server with a deliberately small admission cap.
	QPS   map[string]float64
	Order []string // Nanos keys, then QPS keys
	Notes []string
}

// String renders both tables.
func (r *ParReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "%-20s %14s %12s\n", "series", "ns/query", "queries/s")
	for _, k := range r.Order {
		if ns, ok := r.Nanos[k]; ok {
			fmt.Fprintf(&sb, "%-20s %14d %12s\n", k, ns, "-")
			continue
		}
		fmt.Fprintf(&sb, "%-20s %14s %12.1f\n", k, "-", r.QPS[k])
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// JSON converts the report to a trajectory record; QPS series are encoded
// as their ns/query equivalent so every entry shares the median-ns scale.
func (r *ParReport) JSON(bytesAlloc, allocsOp int64) FigureJSON {
	out := FigureJSON{ID: r.ID, Title: r.Title, MedianNsPerOp: map[string]int64{}, BytesAlloc: bytesAlloc, AllocsOp: allocsOp}
	for k, v := range r.Nanos {
		out.MedianNsPerOp[k] = v
	}
	for k, qps := range r.QPS {
		if qps > 0 {
			out.MedianNsPerOp[k] = int64(1e9 / qps)
		}
	}
	return out
}

// ParDupRatios is the duplicate-share sweep of the coalescing half (percent
// of requests asking the one hot parameterisation).
var ParDupRatios = []int{0, 50, 90}

// ParFigure runs both experiments.
//
// Plan-wall half: every workload query on hybrid engines with 1, 2 and 4
// GPUs, serially and with the parallel scheduler, averaged over Runs. The
// two executors must agree — byte-identical, or within the atomic-jitter
// tolerance for queries whose serial runs already vary — and a divergence
// aborts the figure: lane-serialized dispatch is a pure scheduling change.
//
// Coalescing half: one parameterised scan template served at 1/4/16 clients
// with 0/50/90% of requests duplicating the hot parameter value, against a
// 2-slot admission cap on the CPU configuration. Duplicates fold into
// in-flight leaders (single-flight) and distinct-parameter arrivals ride in
// leaders' slots (batching), so duplicate-heavy load should scale
// super-linearly with client count.
func ParFigure(o TPCHOptions) *ParReport {
	// Default to a heavier scale factor than the other TPC-H figures: the
	// plan half measures cross-lane overlap of real host compute, and at
	// tiny scales per-instruction dispatch overhead drowns the overlap.
	o = defaultTPCH(o, 0.1)
	db := tpch.Generate(o.SF, o.Seed)
	queries := tpch.Queries()

	rep := &ParReport{
		ID:    "par",
		Title: fmt.Sprintf("parallel plans & coalesced serving: TPC-H SF %g", o.SF),
		Nanos: map[string]int64{},
		QPS:   map[string]float64{},
		Notes: []string{
			"plan half: avg wall ns/query over the workload, serial vs parallel executor",
			"serve half: queries/s, coalescing server, 2 admission slots, CPU config",
		},
	}

	// --- (a) serial vs parallel plan execution per GPU count ---
	for _, gpus := range NdevGPUCounts {
		eng := mal.Hybrid.Build(mal.ConfigOptions{
			Threads:   o.Threads,
			GPUMemory: o.GPUMemory,
			GPUs:      gpus,
		})
		for _, parallel := range []bool{false, true} {
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			key := fmt.Sprintf("HYB g=%d %s", gpus, mode)
			rep.Order = append(rep.Order, key)

			var total time.Duration
			frags := 0
			for _, q := range queries {
				q := q
				run := func(par bool) (*mal.Result, *mal.Session) {
					s := mal.NewSession(eng)
					s.SetParallel(par)
					res, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result { return q.Plan(s, db) })
					if err != nil {
						panic(fmt.Sprintf("bench: Q%d g=%d %s: %v", q.Num, gpus, mode, err))
					}
					return res, s
				}
				ref, _ := run(false)
				probe, _ := run(false)
				deterministic := ref.EqualWithin(probe, 0) == nil
				for r := 0; r < o.Runs; r++ {
					start := time.Now()
					res, s := run(parallel)
					total += time.Since(start)
					frags += s.ParallelFragments()
					tol := 0.0
					if !deterministic {
						tol = 1e-5
					}
					if err := res.EqualWithin(ref, tol); err != nil {
						panic(fmt.Sprintf("bench: Q%d g=%d: %s executor diverges from serial: %v", q.Num, gpus, mode, err))
					}
				}
			}
			rep.Nanos[key] = total.Nanoseconds() / int64(len(queries)*o.Runs)
			if parallel {
				rep.Notes = append(rep.Notes, fmt.Sprintf("g=%d: parallel executor ran %d multi-lane fragments", gpus, frags))
			}
		}
	}

	// --- (b) coalesced serving throughput under duplicate-heavy load ---
	qty := db.Lineitem.Col("l_quantity")
	price := db.Lineitem.Col("l_extendedprice")
	plan := func(s *mal.Session) *mal.Result {
		hi := s.Param("hi", 24)
		sel := s.Select(qty, nil, 1, hi, true, true)
		pp := s.Project(sel, price)
		return s.Result([]string{"rev"}, s.Aggr(ops.Sum, pp, nil, 0))
	}
	total := 64 * o.Runs
	for _, dup := range ParDupRatios {
		for _, clients := range ServeConcurrencies {
			key := fmt.Sprintf("dup=%d%% N=%d", dup, clients)
			rep.Order = append(rep.Order, key)

			eng := mal.OcelotCPU.Build(mal.ConfigOptions{Threads: o.Threads})
			sv := serve.New(eng, serve.Options{MaxConcurrent: 2})
			// Warm the template so the measured regime is steady-state.
			if _, err := sv.Execute("scan", nil, plan); err != nil {
				panic(fmt.Sprintf("bench: warm-up scan: %v", err))
			}
			verifyBase := mal.VerifyRuns()

			jobs := make(chan mal.Params, total)
			for i := 0; i < total; i++ {
				if i%100 < dup {
					jobs <- mal.Params{"hi": 24} // the hot parameterisation
				} else {
					jobs <- mal.Params{"hi": float64(1 + i%40)}
				}
			}
			close(jobs)
			start := time.Now()
			done := make(chan struct{})
			for c := 0; c < clients; c++ {
				go func() {
					for p := range jobs {
						if _, err := sv.Execute("scan", p, plan); err != nil {
							panic(fmt.Sprintf("bench: coalesced scan: %v", err))
						}
					}
					done <- struct{}{}
				}()
			}
			for c := 0; c < clients; c++ {
				<-done
			}
			wall := time.Since(start)
			rep.QPS[key] = float64(total) / wall.Seconds()
			if st := sv.Stats()["scan"]; st.Shared+st.Batched > 0 {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d of %d served shared, %d batched",
					key, st.Shared, st.Runs, st.Batched))
			}
			// Verify-once-per-template: the warmed template was verified at
			// seal time, so the measured replays must not have re-entered
			// the verifier at all — its overhead is confined to plan builds.
			if mal.DefaultVerify() {
				if d := mal.VerifyRuns() - verifyBase; d != 0 {
					panic(fmt.Sprintf("bench: %s: cached replays ran the verifier %d times, want 0", key, d))
				}
			}
		}
	}
	if mal.DefaultVerify() {
		rep.Notes = append(rep.Notes, "verifier on: 0 verifier runs across all measured replays (verify-once-per-template)")
	}
	return rep
}
