package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/mal"
)

// tinyOpts keeps figure regeneration fast enough for the unit-test suite;
// the real experiment sizes live in cmd/ocelotbench's defaults.
func tinyOpts() Options {
	return Options{
		SizesMB: []int{1, 2},
		BaseMB:  2,
		Runs:    1,
		Threads: 4,
	}
}

func checkReport(t *testing.T, r *Report, wantSeries int) {
	t.Helper()
	if len(r.Order) != wantSeries {
		t.Fatalf("%s: %d series, want %d", r.ID, len(r.Order), wantSeries)
	}
	for _, c := range r.Order {
		series := r.Millis[c]
		if len(series) != len(r.Xs) {
			t.Fatalf("%s/%s: %d points for %d xs", r.ID, c, len(series), len(r.Xs))
		}
		any := false
		for _, v := range series {
			if !math.IsNaN(v) {
				if v < 0 {
					t.Fatalf("%s/%s: negative timing %v", r.ID, c, v)
				}
				any = true
			}
		}
		if !any {
			t.Fatalf("%s/%s: no data points at all (notes: %v)", r.ID, c, r.Notes)
		}
	}
	if !strings.Contains(r.String(), r.ID) {
		t.Fatalf("%s: rendering lacks the figure id", r.ID)
	}
}

func TestAllMicroFiguresProduceData(t *testing.T) {
	for id, fig := range MicroFigures() {
		id, fig := id, fig
		t.Run(id, func(t *testing.T) {
			r := fig(tinyOpts())
			checkReport(t, r, 4)
		})
	}
}

func TestFig5bOcelotFlatAcrossSelectivity(t *testing.T) {
	// The bitmap-result effect (§5.2.1): Ocelot's runtime must stay flat
	// while MS grows with selectivity. Use a bigger column so the trend
	// dominates noise.
	opt := tinyOpts()
	opt.BaseMB = 16
	opt.Runs = 3
	r := Fig5b(opt)
	ms := r.Millis["MS"]
	gpu := r.Millis["GPU"]
	if ms[len(ms)-1] <= ms[0] {
		t.Skipf("MS did not grow with selectivity (%.3f → %.3f); noisy host", ms[0], ms[len(ms)-1])
	}
	// GPU (virtual time, no noise) must be flat within 20%.
	if gpu[len(gpu)-1] > gpu[0]*1.2 {
		t.Fatalf("GPU selection not selectivity-independent: %v", gpu)
	}
}

func TestFig5aGPUMemoryLimitEndsLine(t *testing.T) {
	// With a tiny device, large inputs must show as missing points — the
	// lines "ending midway" of §5.2.
	opt := tinyOpts()
	opt.SizesMB = []int{1, 64}
	opt.GPUMemory = 8 << 20
	opt.Configs = []mal.Config{mal.OcelotGPU}
	r := Fig5a(opt)
	series := r.Millis["GPU"]
	if math.IsNaN(series[0]) {
		t.Fatal("small input should fit the device")
	}
	if !math.IsNaN(series[1]) {
		t.Fatal("64MB input cannot fit an 8MiB device; expected a missing point")
	}
}

func TestFig7aSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H figure in -short mode")
	}
	opt := TPCHOptions{Options: Options{Runs: 1, Threads: 4, Seed: 42}, SF: 0.005}
	r := Fig7a(opt)
	if len(r.Queries) != 14 {
		t.Fatalf("Fig 7a covers %d queries, want 14", len(r.Queries))
	}
	for _, c := range r.Order {
		for i, v := range r.Seconds[c] {
			if v < 0 {
				t.Fatalf("Q%d on %s failed: %v", r.Queries[i], c, r.Notes)
			}
		}
	}
	if !strings.Contains(r.String(), "Q21") {
		t.Fatal("report rendering lacks Q21")
	}
}

func TestSpillFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H figure in -short mode")
	}
	// The figure is self-checking: it panics on any cross-mode divergence
	// and when the forced budget fails to bind, so the smoke only needs the
	// sweep to complete and the report to be well-formed.
	opt := TPCHOptions{Options: Options{Runs: 1, Threads: 4, Seed: 42}}
	r := SpillFigure(opt)
	if len(r.Queries) != 14 {
		t.Fatalf("spill figure covers %d queries, want 14", len(r.Queries))
	}
	if want := 3 * len(SpillSFs); len(r.Order) != want {
		t.Fatalf("spill figure has %d series, want %d (3 modes × %d SFs)", len(r.Order), want, len(SpillSFs))
	}
	for _, c := range r.Order {
		for i, v := range r.Seconds[c] {
			if v < 0 {
				t.Fatalf("Q%d on %s failed: %v", r.Queries[i], c, r.Notes)
			}
		}
	}
	spilled := 0
	for _, n := range r.Notes {
		if strings.Contains(n, "spilling joins") {
			spilled++
		}
	}
	if spilled < len(SpillSFs) {
		t.Fatalf("expected a spill-stats note per scale factor, got %d of %d (notes %v)", spilled, len(SpillSFs), r.Notes)
	}
}

func TestParFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H figure in -short mode")
	}
	// The plan half is self-checking (panics when the parallel executor
	// diverges from serial), so the smoke asserts the sweep's shape, that
	// the parallel executor and the coalescing paths actually engaged, and
	// that the rendering carries both tables.
	// SF pinned small: the figure's own default is heavier (overlap needs
	// real compute) but the smoke only checks shape and engagement.
	opt := TPCHOptions{Options: Options{Runs: 1, Threads: 4, Seed: 42}, SF: 0.01}
	r := ParFigure(opt)
	if want := 2 * len(NdevGPUCounts); len(r.Nanos) != want {
		t.Fatalf("par figure has %d plan-wall series, want %d (serial+parallel × %d GPU counts)",
			len(r.Nanos), want, len(NdevGPUCounts))
	}
	if want := len(ParDupRatios) * len(ServeConcurrencies); len(r.QPS) != want {
		t.Fatalf("par figure has %d qps series, want %d", len(r.QPS), want)
	}
	if len(r.Order) != len(r.Nanos)+len(r.QPS) {
		t.Fatalf("order lists %d series for %d measurements", len(r.Order), len(r.Nanos)+len(r.QPS))
	}
	for k, ns := range r.Nanos {
		if ns <= 0 {
			t.Fatalf("%s: non-positive wall %d", k, ns)
		}
	}
	for k, qps := range r.QPS {
		if qps <= 0 {
			t.Fatalf("%s: non-positive throughput %v", k, qps)
		}
	}
	engaged, shared := 0, 0
	for _, n := range r.Notes {
		if strings.Contains(n, "multi-lane fragments") && !strings.Contains(n, "ran 0 multi-lane") {
			engaged++
		}
		if strings.Contains(n, "served shared") {
			shared++
		}
	}
	if engaged != len(NdevGPUCounts) {
		t.Fatalf("parallel executor engaged on %d of %d GPU counts (notes %v)", engaged, len(NdevGPUCounts), r.Notes)
	}
	if shared == 0 {
		t.Fatalf("no duplicate load produced shared executions (notes %v)", r.Notes)
	}
	if s := r.String(); !strings.Contains(s, "HYB g=2 parallel") || !strings.Contains(s, "dup=90% N=16") {
		t.Fatal("report rendering lacks a plan-wall or qps series")
	}
}

func TestShardFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H figure in -short mode")
	}
	// The figure is self-checking — it panics when any sharded answer
	// differs byte-for-byte from the unsharded fusion-off baseline, when a
	// scatter falls back, or when the ingest fails to retire a plan — so the
	// smoke asserts the sweep's shape and that the accounting surfaced.
	opt := TPCHOptions{Options: Options{Runs: 1, Threads: 4, Seed: 42}, SF: 0.005}
	r := ShardFigure(opt)
	if len(r.Queries) != 14 {
		t.Fatalf("shard figure covers %d queries, want 14", len(r.Queries))
	}
	if want := 1 + len(ShardCounts); len(r.Order) != want {
		t.Fatalf("shard figure has %d series, want %d (baseline + %d shard counts)",
			len(r.Order), want, len(ShardCounts))
	}
	for _, c := range r.Order {
		if len(r.Seconds[c]) != len(r.Queries) {
			t.Fatalf("%s: %d points for %d queries", c, len(r.Seconds[c]), len(r.Queries))
		}
		for i, v := range r.Seconds[c] {
			if v <= 0 {
				t.Fatalf("Q%d on %s: non-positive timing %v", r.Queries[i], c, v)
			}
		}
	}
	scattered, ingest := 0, false
	for _, n := range r.Notes {
		if strings.Contains(n, "scattered") && !strings.Contains(n, "0 scattered") {
			scattered++
		}
		if strings.Contains(n, "live ingest") {
			ingest = true
		}
	}
	if scattered != len(ShardCounts) {
		t.Fatalf("scatter accounting on %d of %d shard counts (notes %v)", scattered, len(ShardCounts), r.Notes)
	}
	if !ingest {
		t.Fatalf("shard figure notes lack the live-ingest probe: %v", r.Notes)
	}
	if s := r.String(); !strings.Contains(s, "MS n=4") {
		t.Fatal("report rendering lacks the 4-shard series")
	}
}

func TestFig7dProducesAllSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H figure in -short mode")
	}
	opt := TPCHOptions{Options: Options{Runs: 1, Threads: 4, Seed: 42,
		CPULaunchPause: 20 * time.Microsecond}}
	r := Fig7d(opt)
	checkReport(t, r, 4)
	// Linear scaling: the largest SF should cost clearly more than the
	// smallest on the deterministic GPU timeline.
	gpu := r.Millis["GPU"]
	if gpu[len(gpu)-1] < 2*gpu[0] {
		t.Fatalf("GPU Q1 did not scale with SF: %v", gpu)
	}
}

func TestMeasureUsesVirtualTimeForGPU(t *testing.T) {
	o := engineFor(mal.OcelotGPU, Options{GPUMemory: 64 << 20}.withDefaults())
	col := uniformI32("c", 1<<20, 100, 1)
	defer col.Free()
	d, err := Measure(o, 2, func() error {
		res, err := o.Select(col, nil, 0, 49, true, true)
		releaseAll(o, res)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("virtual measurement must be positive")
	}
	// 4MB at ~100GB/s is tens of microseconds — far below what functional
	// execution costs in wall time; a small virtual duration is evidence
	// the virtual clock (not the wall clock) was measured.
	if d > 5*time.Millisecond {
		t.Fatalf("GPU measurement suspiciously large (%v); wall clock leaked in?", d)
	}
}

func TestAblationsProduceData(t *testing.T) {
	opt := tinyOpts()
	for id, fig := range Ablations() {
		id, fig := id, fig
		t.Run(id, func(t *testing.T) {
			r := fig(opt)
			if len(r.Order) == 0 {
				t.Fatalf("%s: no series", r.ID)
			}
			for _, c := range r.Order {
				any := false
				for _, v := range r.Millis[c] {
					if v > 0 {
						any = true
					}
				}
				if !any {
					t.Fatalf("%s/%s: no data (notes %v)", r.ID, c, r.Notes)
				}
			}
		})
	}
}

func TestAblationAccumulatorContention(t *testing.T) {
	// The §4.1.7 design must matter: at 2 groups the single-accumulator
	// variant must cost clearly more than the spread one on the CPU.
	opt := tinyOpts()
	opt.BaseMB = 8
	opt.Runs = 2
	r := AblationAccumulators(opt)
	spread := r.Millis["CPU/spread"][0]
	single := r.Millis["CPU/single"][0]
	if single < spread*1.5 {
		t.Skipf("contention effect below threshold on this host: spread %.2f vs single %.2f", spread, single)
	}
}

func TestAdaptFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H figure in -short mode")
	}
	// The figure is self-checking — it panics when any adaptive mode
	// diverges from the fixed-constant reference, when verifier runs grow
	// on cached replays, and when the forced threshold never re-plans a
	// tail — so the smoke asserts the sweep's shape and that the replan
	// accounting surfaced in the notes.
	opt := TPCHOptions{Options: Options{Runs: 1, Threads: 4, Seed: 42}, SF: 0.01}
	r := AdaptFigure(opt)
	if len(r.Queries) != 14 {
		t.Fatalf("adapt figure covers %d queries, want 14", len(r.Queries))
	}
	if want := 2 * 4; len(r.Order) != want {
		t.Fatalf("adapt figure has %d series, want %d (2 datasets × 4 modes)", len(r.Order), want)
	}
	for _, c := range r.Order {
		for i, v := range r.Seconds[c] {
			if v < 0 {
				t.Fatalf("Q%d on %s failed: %v", r.Queries[i], c, r.Notes)
			}
		}
	}
	replanNote := false
	for _, n := range r.Notes {
		if strings.Contains(n, "re-plan") {
			replanNote = true
		}
	}
	if !replanNote {
		t.Fatalf("adapt figure notes lack the re-plan accounting: %v", r.Notes)
	}
}
