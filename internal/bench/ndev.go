// The N-device figure: the TPC-H workload under the hybrid configuration
// with a growing simulated-GPU count. It has no counterpart in the paper —
// §7 stops at sketching multi-device placement as future work — and tracks
// the repository's device-scaling trajectory (ROADMAP: multi-GPU / >2
// devices) the same way the serving figures track the production-serving
// one. Every device count must return the same results; the figure verifies
// that on the fly and reports per-query wall time per GPU count.
package bench

import (
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/mal"
	"repro/internal/tpch"
)

// NdevGPUCounts is the figure's sweep of simulated-GPU counts.
var NdevGPUCounts = []int{1, 2, 4}

// NdevFigure runs every workload query on hybrid engines with 1, 2 and 4
// simulated GPUs (each sized Options.GPUMemory) and reports per-query wall
// seconds per device count. Results are cross-checked against the 1-GPU
// run and a mismatch aborts the figure: with the order-stable grouped
// float sum, device count is a pure execution-strategy change, so a
// divergence is a placement bug, not noise.
func NdevFigure(o TPCHOptions) *QueryReport {
	o = defaultTPCH(o, 0.01)
	db := tpch.Generate(o.SF, o.Seed)
	queries := tpch.Queries()

	rep := &QueryReport{
		ID:      "ndev",
		Title:   fmt.Sprintf("N-device hybrid: TPC-H workload, SF %g, 1/2/4 simulated GPUs", o.SF),
		Seconds: map[string][]float64{},
		Notes:   []string{"wall seconds per query; placement relaxes over the whole device set"},
	}
	for _, q := range queries {
		rep.Queries = append(rep.Queries, q.Num)
	}

	reference := make([]*mal.Result, len(queries))
	for _, gpus := range NdevGPUCounts {
		label := fmt.Sprintf("HYB g=%d", gpus)
		rep.Order = append(rep.Order, label)
		series := make([]float64, len(queries))
		rep.Seconds[label] = series

		eng := mal.Hybrid.Build(mal.ConfigOptions{
			Threads:   o.Threads,
			GPUMemory: o.GPUMemory,
			GPUs:      gpus,
		})
		gpuLabels := map[string]bool{}
		if h, ok := eng.(*hybrid.Engine); ok {
			for _, d := range h.Devices() {
				if d.Class() == "GPU" {
					gpuLabels[d.Label] = true
				}
			}
		}
		for i, q := range queries {
			q := q
			var last *mal.Result
			avg, err := Measure(eng, o.Runs, func() error {
				s := mal.NewSession(eng)
				res, err := mal.RunQuery(s, func(s *mal.Session) *mal.Result { return q.Plan(s, db) })
				last = res
				return err
			})
			if err != nil {
				panic(fmt.Sprintf("bench: Q%d with %d GPUs: %v", q.Num, gpus, err))
			}
			series[i] = avg.Seconds()
			if reference[i] == nil {
				reference[i] = last
			} else if err := last.EqualWithin(reference[i], 0); err != nil {
				if err2 := last.EqualWithin(reference[i], 1e-5); err2 != nil {
					panic(fmt.Sprintf("bench: Q%d at %d GPUs diverges from the 1-GPU run: %v", q.Num, gpus, err2))
				}
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("Q%d at %d GPUs: within float tolerance but not bit-equal: %v", q.Num, gpus, err))
			}
		}
		if h, ok := eng.(*hybrid.Engine); ok && gpus > 1 {
			used := map[string]bool{}
			for _, m := range h.Placements() {
				for lbl, n := range m {
					if n > 0 && gpuLabels[lbl] {
						used[lbl] = true
					}
				}
			}
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("g=%d: placement used %d of %d GPUs", gpus, len(used), len(gpuLabels)))
		}
	}
	return rep
}
