package bench

import (
	"encoding/json"
	"math"
	"os"
	"sort"
)

// FigureJSON is the machine-readable record of one regenerated figure, the
// unit of the repository's benchmark trajectory (BENCH_PR*.json): per
// configuration, the median across the figure's measured points in ns/op
// (one "op" being one measured operator/query run), plus the host bytes the
// whole regeneration allocated. Medians are robust to the sweep's extreme
// points; NaN points (configurations that could not run, e.g. the GPU line
// ending when the input exceeds device memory) are excluded.
type FigureJSON struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// MedianNsPerOp maps configuration label → median ns per measured run.
	MedianNsPerOp map[string]int64 `json:"median_ns_per_op"`
	// BytesAlloc is the total host allocation of regenerating the figure
	// (runtime.MemStats.TotalAlloc delta — B/op at figure granularity).
	BytesAlloc int64 `json:"bytes_alloc"`
	// AllocsOp is the total host allocation count of regenerating the
	// figure (runtime.MemStats.Mallocs delta — allocs/op at figure
	// granularity).
	AllocsOp int64 `json:"allocs_op"`
}

func medianNs(millis []float64) (int64, bool) {
	vals := make([]float64, 0, len(millis))
	for _, v := range millis {
		if !math.IsNaN(v) && v >= 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	mid := vals[len(vals)/2]
	if len(vals)%2 == 0 {
		mid = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
	return int64(mid * 1e6), true
}

// JSON converts a sweep figure to its trajectory record.
func (r *Report) JSON(bytesAlloc, allocsOp int64) FigureJSON {
	out := FigureJSON{ID: r.ID, Title: r.Title, MedianNsPerOp: map[string]int64{}, BytesAlloc: bytesAlloc, AllocsOp: allocsOp}
	for label, series := range r.Millis {
		if ns, ok := medianNs(series); ok {
			out.MedianNsPerOp[label] = ns
		}
	}
	return out
}

// JSON converts a TPC-H per-query figure to its trajectory record (seconds
// → ns).
func (r *QueryReport) JSON(bytesAlloc, allocsOp int64) FigureJSON {
	out := FigureJSON{ID: r.ID, Title: r.Title, MedianNsPerOp: map[string]int64{}, BytesAlloc: bytesAlloc, AllocsOp: allocsOp}
	for label, secs := range r.Seconds {
		millis := make([]float64, len(secs))
		for i, s := range secs {
			if s < 0 {
				millis[i] = math.NaN()
				continue
			}
			millis[i] = s * 1e3
		}
		if ns, ok := medianNs(millis); ok {
			out.MedianNsPerOp[label] = ns
		}
	}
	return out
}

// WriteJSON writes the figure records, sorted by id, as an indented JSON
// array — the file CI and trajectory tooling diff across PRs.
func WriteJSON(path string, figs []FigureJSON) error {
	sort.Slice(figs, func(i, j int) bool { return figs[i].ID < figs[j].ID })
	data, err := json.MarshalIndent(figs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
