package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cl"
	"repro/internal/core/kernels"
	"repro/internal/ops"
)

// Ablation benchmarks for the design decisions the paper fixes by
// trial-and-error or adopts from prior work. Each ablation runs one kernel
// configuration against its alternative on both device drivers, isolating
// the specific effect the design addresses:
//
//   - accumulator spreading (§4.1.7): replicated accumulators vs. a single
//     accumulator per group under few-group contention;
//   - memory access pattern (§4.2, Figure 4): device-preferred vs. foreign
//     pattern for a bandwidth-bound kernel;
//   - radix width (§5.2.7): 8-bit vs. 4-bit digits per device;
//   - optimistic hashing (§4.1.4): the optimistic+check fast path vs. going
//     straight to the synchronised pessimistic round.

// ablEnv bundles a device's execution state for direct kernel launches.
type ablEnv struct {
	dev *cl.Device
	ctx *cl.Context
	q   *cl.Queue
}

func newAblEnv(dev *cl.Device) *ablEnv {
	ctx := cl.NewContext(dev)
	return &ablEnv{dev: dev, ctx: ctx, q: cl.NewQueue(ctx)}
}

func (e *ablEnv) buf(words int) *cl.Buffer {
	b, err := e.ctx.CreateBuffer(words * 4)
	if err != nil {
		panic(err) // ablation devices are sized generously
	}
	return b
}

// measureKernel times reps launches of op: virtual span on simulated
// devices, wall time otherwise.
func (e *ablEnv) measureKernel(reps int, op func() *cl.Event) (float64, error) {
	// Warm-up.
	if err := op().Wait(); err != nil {
		return 0, err
	}
	if e.dev.Simulated {
		start := e.dev.TimelineNow()
		for i := 0; i < reps; i++ {
			if err := op().Wait(); err != nil {
				return 0, err
			}
		}
		return float64((e.dev.TimelineNow() - start).Microseconds()) / float64(reps) / 1000, nil
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := op().Wait(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(reps) / 1000, nil
}

// AblationAccumulators measures the §4.1.7 contention-spreading design:
// grouped float sums over few groups, with the paper's replica plan vs. a
// single accumulator per group.
func AblationAccumulators(opt Options) *Report {
	opt = opt.withDefaults()
	groupCounts := []float64{2, 4, 8, 16, 64}
	rows := opt.BaseMB * rowsPerMB

	r := &Report{
		ID:     "Ablation A1",
		Title:  fmt.Sprintf("Grouped aggregation: replicated vs. single accumulators (§4.1.7), %d MB", opt.BaseMB),
		XLabel: "#groups",
		Xs:     groupCounts,
		Millis: map[string][]float64{},
	}
	for _, dev := range []*cl.Device{cl.NewCPUDevice(opt.Threads), cl.NewGPUDevice(opt.GPUMemory)} {
		e := newAblEnv(dev)
		vals := e.buf(rows + 1)
		gids := e.buf(rows + 1)
		rnd := rand.New(rand.NewSource(opt.Seed))
		vf := vals.F32()
		for i := 0; i < rows; i++ {
			vf[i] = rnd.Float32()
		}
		for _, label := range []string{"/spread", "/single"} {
			r.Order = append(r.Order, dev.Const.Class.String()+label)
			r.Millis[dev.Const.Class.String()+label] = make([]float64, len(groupCounts))
		}
		for xi, gc := range groupCounts {
			ngroups := int(gc)
			gi := gids.I32()
			for i := 0; i < rows; i++ {
				gi[i] = int32(i % ngroups)
			}
			plans := map[string]kernels.AggPlan{
				"/spread": kernels.PlanGroupedAgg(ngroups),
				"/single": {NGroups: ngroups, Replicas: 1, Table: ngroups, UseLocal: true},
			}
			for label, plan := range plans {
				launchGroups, _ := cl.DefaultLaunch(dev)
				scratch := e.buf(launchGroups*plan.Table + 1)
				dst := e.buf(ngroups + 1)
				ms, err := e.measureKernel(opt.Runs, func() *cl.Event {
					return kernels.GroupedAggF32(e.q, dst, vals, gids, scratch, ops.Sum, rows, plan, nil)
				})
				if err != nil {
					r.Notes = append(r.Notes, fmt.Sprintf("%s%s: %v", dev.Const.Class, label, err))
					continue
				}
				r.Millis[dev.Const.Class.String()+label][xi] = ms
				_ = scratch.Release()
				_ = dst.Release()
			}
		}
	}
	return r
}

// AblationAccessPattern measures the §4.2 access-pattern rule: a
// bandwidth-bound selection kernel with the device-preferred pattern vs.
// the other device's pattern, by flipping the build constant.
func AblationAccessPattern(opt Options) *Report {
	opt = opt.withDefaults()
	xs := make([]float64, len(opt.SizesMB))
	for i, mb := range opt.SizesMB {
		xs[i] = float64(mb)
	}
	r := &Report{
		ID:     "Ablation A2",
		Title:  "Selection kernel: device-preferred vs. foreign access pattern (§4.2, Fig. 4)",
		XLabel: "size[MB]",
		Xs:     xs,
		Millis: map[string][]float64{},
	}
	for _, base := range []*cl.Device{cl.NewCPUDevice(opt.Threads), cl.NewGPUDevice(opt.GPUMemory)} {
		// A twin device with the access-pattern constant flipped but the
		// launch geometry kept, so only the pattern changes.
		var foreign *cl.Device
		if base.Const.Class == cl.ClassCPU {
			foreign = cl.NewCPUDevice(opt.Threads)
			foreign.Const.Class = cl.ClassGPU
		} else {
			foreign = cl.NewGPUDevice(opt.GPUMemory)
			foreign.Const.Class = cl.ClassCPU
		}
		foreign.Const.Cores = base.Const.Cores
		foreign.Const.UnitsPerCore = base.Const.UnitsPerCore
		for devLabel, dev := range map[string]*cl.Device{"/preferred": base, "/foreign": foreign} {
			label := base.Const.Class.String() + devLabel
			r.Order = append(r.Order, label)
			series := make([]float64, len(xs))
			e := newAblEnv(dev)
			for xi, mb := range opt.SizesMB {
				rows := mb * rowsPerMB
				col := e.buf(rows + 1)
				ci := col.I32()
				rnd := rand.New(rand.NewSource(opt.Seed + int64(xi)))
				for i := 0; i < rows; i++ {
					ci[i] = rnd.Int31n(1000)
				}
				bm := e.buf(bitmapWordsOf(rows) + 1)
				ms, err := e.measureKernel(opt.Runs, func() *cl.Event {
					return kernels.SelectI32(e.q, bm, col, nil, rows, 0, 49, nil)
				})
				if err != nil {
					r.Notes = append(r.Notes, fmt.Sprintf("%s at %dMB: %v", label, mb, err))
					continue
				}
				series[xi] = ms
				_ = col.Release()
				_ = bm.Release()
			}
			r.Millis[label] = series
		}
	}
	r.Notes = append(r.Notes,
		"note: the simulated GPU's cost model is pattern-blind; its foreign-pattern row shows functional portability, the CPU rows show the real cache effect")
	return r
}

// AblationRadixWidth measures the §5.2.7 radix choice: sorting with 4-bit
// vs. 8-bit digits on both devices.
func AblationRadixWidth(opt Options) *Report {
	opt = opt.withDefaults()
	xs := make([]float64, len(opt.SizesMB))
	for i, mb := range opt.SizesMB {
		xs[i] = float64(mb)
	}
	r := &Report{
		ID:     "Ablation A3",
		Title:  "Radix sort: 4-bit vs. 8-bit digits (§5.2.7)",
		XLabel: "size[MB]",
		Xs:     xs,
		Millis: map[string][]float64{},
	}
	for _, dev := range []*cl.Device{cl.NewCPUDevice(opt.Threads), cl.NewGPUDevice(opt.GPUMemory)} {
		e := newAblEnv(dev)
		for _, bits := range []int{4, 8} {
			label := fmt.Sprintf("%s/%dbit", dev.Const.Class, bits)
			r.Order = append(r.Order, label)
			series := make([]float64, len(xs))
			for xi, mb := range opt.SizesMB {
				rows := mb * rowsPerMB
				keys := e.buf(rows + 1)
				vals := e.buf(rows + 1)
				tmpK, tmpV := e.buf(rows+1), e.buf(rows+1)
				_, _, gsz := kernels.Geometry(dev)
				hist := e.buf((1<<8)*gsz + 2)
				rnd := rand.New(rand.NewSource(opt.Seed + int64(xi)))
				ku := keys.U32()
				ms, err := e.measureKernel(opt.Runs, func() *cl.Event {
					for i := 0; i < rows; i++ {
						ku[i] = rnd.Uint32()
					}
					ev := kernels.Iota(e.q, vals, rows, 0, nil)
					return kernels.SortU32Bits(e.q, keys, vals, tmpK, tmpV, hist, rows, bits, []*cl.Event{ev})
				})
				if err != nil {
					r.Notes = append(r.Notes, fmt.Sprintf("%s at %dMB: %v", label, mb, err))
					continue
				}
				series[xi] = ms
				for _, b := range []*cl.Buffer{keys, vals, tmpK, tmpV, hist} {
					_ = b.Release()
				}
			}
			r.Millis[label] = series
		}
	}
	return r
}

// AblationOptimisticHashing measures the §4.1.4 insertion strategy: the
// optimistic+check(+pessimistic-if-needed) protocol vs. going straight to
// the CAS-synchronised round, on a key column (no duplicate churn).
func AblationOptimisticHashing(opt Options) *Report {
	opt = opt.withDefaults()
	xs := make([]float64, len(opt.SizesMB))
	for i, mb := range opt.SizesMB {
		xs[i] = float64(mb)
	}
	r := &Report{
		ID:     "Ablation A4",
		Title:  "Parallel hashing: optimistic-first vs. pessimistic-only insertion (§4.1.4)",
		XLabel: "size[MB]",
		Xs:     xs,
		Millis: map[string][]float64{},
	}
	for _, dev := range []*cl.Device{cl.NewCPUDevice(opt.Threads), cl.NewGPUDevice(opt.GPUMemory)} {
		e := newAblEnv(dev)
		for _, mode := range []string{"/optimistic", "/pessimistic"} {
			label := dev.Const.Class.String() + mode
			r.Order = append(r.Order, label)
			series := make([]float64, len(xs))
			for xi, mb := range opt.SizesMB {
				rows := mb * rowsPerMB
				col := e.buf(rows + 1)
				ci := col.I32()
				perm := rand.New(rand.NewSource(opt.Seed)).Perm(rows)
				for i := 0; i < rows; i++ {
					ci[i] = int32(perm[i]) // unique keys
				}
				capacity := kernels.TableCapacity(rows)
				state := e.buf(capacity)
				keys1 := e.buf(capacity)
				fail := e.buf(1)
				pessimistic := mode == "/pessimistic"
				ms, err := e.measureKernel(opt.Runs, func() *cl.Event {
					z := kernels.Fill(e.q, state, capacity, 0, nil)
					z2 := kernels.Fill(e.q, fail, 1, 0, nil)
					if pessimistic {
						return kernels.HashInsertPessimistic(e.q, state, keys1, nil, col, nil, fail, rows, capacity, []*cl.Event{z, z2})
					}
					ev := kernels.HashInsertOptimistic(e.q, state, keys1, col, rows, capacity, []*cl.Event{z, z2})
					ev = kernels.HashCheck(e.q, state, keys1, nil, col, nil, fail, rows, capacity, []*cl.Event{ev})
					// On check failure the engine would re-run pessimistically
					// over all keys; include that cost when it happens.
					return kernels.HashInsertPessimistic(e.q, state, keys1, nil, col, nil, fail, rows, capacity, []*cl.Event{ev})
				})
				if err != nil {
					r.Notes = append(r.Notes, fmt.Sprintf("%s at %dMB: %v", label, mb, err))
					continue
				}
				series[xi] = ms
				for _, b := range []*cl.Buffer{col, state, keys1, fail} {
					_ = b.Release()
				}
			}
			r.Millis[label] = series
		}
	}
	return r
}

func bitmapWordsOf(n int) int { return (kernels.BitmapBytes(n) + 3) / 4 }

// Ablations maps ablation ids to their generators.
func Ablations() map[string]func(Options) *Report {
	return map[string]func(Options) *Report{
		"a1": AblationAccumulators,
		"a2": AblationAccessPattern,
		"a3": AblationRadixWidth,
		"a4": AblationOptimisticHashing,
	}
}
