package lint

import (
	"go/ast"
	"strings"
)

// EnqueueCheck flags dropped errors in internal/core and internal/monet:
// a call whose result set includes an error, used as a bare statement (or
// the subject of go/defer) without assigning the error anywhere. Kernel
// launches and enqueues in these packages latch device failures in the
// returned error; dropping it silently corrupts downstream results.
// `_ = f()` counts as an explicit acknowledgement and is not flagged.
// Enqueue* variants that return only a *cl.Event are fine by construction:
// their errors latch in the queue and surface at Finish.
var EnqueueCheck = &Analyzer{
	Name: "enqueuecheck",
	Doc:  "flag unchecked errors from enqueues and kernel launches in internal/core and internal/monet",
	Run:  runEnqueueCheck,
}

func runEnqueueCheck(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg, "internal/core", "internal/monet") {
		return nil
	}
	check := func(call *ast.CallExpr, how string) {
		if call == nil || !typeHasError(pass.Info.TypeOf(call)) {
			return
		}
		pass.Reportf(call.Pos(), "%s drops its error result; check it or assign it to _ explicitly", how+" of "+callName(call))
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "statement call")
				}
			case *ast.GoStmt:
				check(st.Call, "go statement")
			case *ast.DeferStmt:
				check(st.Call, "defer statement")
			}
			return true
		})
	}
	return nil
}

// callName renders a short human-readable name for the called function.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		var parts []string
		for cur := ast.Expr(fn); ; {
			sel, ok := cur.(*ast.SelectorExpr)
			if !ok {
				if id, ok := cur.(*ast.Ident); ok {
					parts = append(parts, id.Name)
				}
				break
			}
			parts = append(parts, sel.Sel.Name)
			cur = sel.X
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, ".")
	default:
		return "call"
	}
}
