package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder flags plan execution attempted while holding one of the
// serve-path bookkeeping locks: the plan cache's mutex (internal/mal,
// PlanCache.mu), the server's flight-map mutex (internal/serve,
// Server.fmu), and the shard coordinator's compiled-plan mutex
// (internal/serve, ShardedServer.cmu). Plan execution acquires engine locks
// and can block on device work; taking it under a bookkeeping lock inverts
// the documented order (engine locks are innermost) and stalls every
// concurrent client on a map lookup. The analyzer is textual: the critical
// section runs from a Lock call to the first following Unlock on the same
// mutex expression, or to the end of the function when the Unlock is
// deferred. Function literals are separate scopes: a lock taken (or
// deferred-unlocked) inside a closure never spans the enclosing body.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag plan execution (Template.Run, Session methods, Server.Execute, engine calls) under the plan-cache, flight-map or shard-coordinator locks",
	Run:  runLockOrder,
}

// sessionExecMethods are the Session entry points that execute or flush
// plan fragments.
var sessionExecMethods = map[string]bool{
	"Result": true, "ScalarF": true, "ScalarI": true, "Sync": true,
	"Close": true, "runTemplate": true, "execute": true, "flush": true,
	"drain": true,
}

func runLockOrder(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg, "internal/mal", "internal/serve") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockOrder(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockOrder(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type lockEvent struct {
	pos      token.Pos
	key      string // mutex identity: rendered owner expression + field
	unlock   bool
	deferred bool
}

// inspectShallow walks body without descending into nested function
// literals — those are separate lock scopes, analyzed on their own.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

func checkLockOrder(pass *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	deferredCalls := map[token.Pos]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch st := n.(type) {
		case *ast.DeferStmt:
			call, deferred = st.Call, true
			deferredCalls[st.Call.Pos()] = true
		case *ast.CallExpr:
			// Already recorded via its DeferStmt parent (Inspect is
			// pre-order, so the parent ran first).
			if deferredCalls[st.Pos()] {
				return true
			}
			call = st
		default:
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
			return true
		}
		key, guarded := guardedMutex(pass, sel.X)
		if !guarded {
			return true
		}
		events = append(events, lockEvent{pos: call.Pos(), key: key, unlock: sel.Sel.Name == "Unlock", deferred: deferred})
		return true
	})
	if len(events) == 0 {
		return
	}

	for i, ev := range events {
		if ev.unlock {
			continue
		}
		// Critical section: Lock → first textual Unlock of the same mutex,
		// or scope end when that Unlock is deferred (or absent).
		end := body.End()
		for _, u := range events[i+1:] {
			if u.unlock && u.key == ev.key && !u.deferred {
				end = u.pos
				break
			}
		}
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() <= ev.pos || call.Pos() >= end {
				return true
			}
			if why := execCall(pass, call); why != "" {
				pass.Reportf(call.Pos(),
					"%s while holding %s; plan execution takes engine locks and must not run under a bookkeeping lock",
					why, ev.key)
			}
			return true
		})
	}
}

// guardedMutex reports whether expr names one of the two guarded
// bookkeeping mutexes and returns a stable identity string for it.
func guardedMutex(pass *Pass, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// The field must be a sync.Mutex/RWMutex …
	if !isNamed(pass.Info.TypeOf(sel), "sync", "Mutex") && !isNamed(pass.Info.TypeOf(sel), "sync", "RWMutex") {
		return "", false
	}
	// … named mu on a PlanCache, fmu on a Server, or cmu on a ShardedServer.
	owner := pass.Info.TypeOf(sel.X)
	switch {
	case sel.Sel.Name == "mu" && isNamed(owner, "internal/mal", "PlanCache"):
		return types.ExprString(sel.X) + ".mu (plan cache)", true
	case sel.Sel.Name == "fmu" && isNamed(owner, "internal/serve", "Server"):
		return types.ExprString(sel.X) + ".fmu (flight map)", true
	case sel.Sel.Name == "cmu" && isNamed(owner, "internal/serve", "ShardedServer"):
		return types.ExprString(sel.X) + ".cmu (shard coordinator)", true
	}
	return "", false
}

// execCall classifies call as plan execution, returning a description or
// "".
func execCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	// Package-level mal.RunQuery.
	if obj := pass.Info.ObjectOf(sel.Sel); obj != nil {
		if f, ok := obj.(*types.Func); ok && f.Name() == "RunQuery" && pathHasSuffix(f.Pkg(), "internal/mal") {
			return "RunQuery"
		}
	}
	recv := pass.Info.TypeOf(sel.X)
	switch {
	case isNamed(recv, "internal/hybrid", "Engine"), isNamed(recv, "internal/core", "Engine"):
		return "engine call " + name
	case isNamed(recv, "internal/mal", "Template") && (name == "Run" || name == "RunOn"):
		return "Template." + name
	case isNamed(recv, "internal/mal", "PlanCache") && name == "Run":
		return "PlanCache.Run"
	case isNamed(recv, "internal/mal", "ShardPlan") && name == "Merge":
		return "ShardPlan.Merge"
	case isNamed(recv, "internal/serve", "Server") && (name == "Execute" || name == "ExecuteCtx"):
		return "Server." + name
	case isNamed(recv, "internal/mal", "Session") && sessionExecMethods[name]:
		return "Session." + name
	}
	return ""
}
