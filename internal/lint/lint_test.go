package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// testLoader typechecks testdata packages from source, resolving every
// import (including "sync") from testdata/src — a miniature GOPATH.
type testLoader struct {
	fset  *token.FileSet
	root  string
	pkgs  map[string]*types.Package
	infos map[string]*types.Info
	files map[string][]*ast.File
}

func newTestLoader(t *testing.T) *testLoader {
	t.Helper()
	return &testLoader{
		fset:  token.NewFileSet(),
		root:  filepath.Join("testdata", "src"),
		pkgs:  map[string]*types.Package{},
		infos: map[string]*types.Info{},
		files: map[string][]*ast.File{},
	}
}

func (l *testLoader) Import(path string) (*types.Package, error) { return l.load(path) }

func (l *testLoader) load(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("testdata package %q: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %q: %v", path, err)
	}
	l.pkgs[path], l.infos[path], l.files[path] = pkg, info, files
	return pkg, nil
}

// wantRe matches the `// want `+"`regexp`"+“ convention on testdata lines.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type diag struct {
	file string
	line int
	msg  string
}

// runAnalyzer loads the package and returns the diagnostics the analyzer
// produced, keyed by file basename and line.
func runAnalyzer(t *testing.T, l *testLoader, a *Analyzer, path string) []diag {
	t.Helper()
	pkg, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	var diags []diag
	pass := &Pass{
		Analyzer: a, Fset: l.fset, Files: l.files[path], Pkg: pkg, Info: l.infos[path],
		report: func(pos token.Pos, msg string) {
			p := l.fset.Position(pos)
			diags = append(diags, diag{filepath.Base(p.Filename), p.Line, msg})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, path, err)
	}
	return diags
}

// wants extracts the expected-diagnostic annotations of a loaded package.
func wants(l *testLoader, path string) []diag {
	var out []diag
	for _, f := range l.files[path] {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := l.fset.Position(c.Pos())
				out = append(out, diag{filepath.Base(p.Filename), p.Line, m[1]})
			}
		}
	}
	return out
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
	}{
		{DispatchThrough, "a/internal/mal"},
		{DispatchThrough, "a/other"}, // out of scope: must stay silent
		{EnqueueCheck, "b/internal/core"},
		{ReleasePair, "c/internal/core"},
		{LockOrder, "e/internal/mal"},
		{LockOrder, "e/internal/serve"},
	}
	l := newTestLoader(t)
	for _, tc := range cases {
		t.Run(tc.analyzer.Name+"/"+tc.path, func(t *testing.T) {
			got := runAnalyzer(t, l, tc.analyzer, tc.path)
			want := wants(l, tc.path)
			sort.Slice(got, func(i, j int) bool { return got[i].line < got[j].line })

			matched := make([]bool, len(got))
			for _, w := range want {
				re, err := regexp.Compile(w.msg)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", w.file, w.line, w.msg, err)
				}
				ok := false
				for i, g := range got {
					if !matched[i] && g.file == w.file && g.line == w.line && re.MatchString(g.msg) {
						matched[i], ok = true, true
						break
					}
				}
				if !ok {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.msg)
				}
			}
			for i, g := range got {
				if !matched[i] {
					t.Errorf("%s:%d: unexpected diagnostic %q", g.file, g.line, g.msg)
				}
			}
		})
	}
}

// TestAnalyzerScope: every analyzer ignores packages outside its path
// scope entirely, even when the code would otherwise trip it.
func TestAnalyzerScope(t *testing.T) {
	l := newTestLoader(t)
	for _, a := range []*Analyzer{EnqueueCheck, ReleasePair, LockOrder} {
		if got := runAnalyzer(t, l, a, "a/other"); len(got) != 0 {
			t.Errorf("%s reported %d diagnostics outside its scope", a.Name, len(got))
		}
	}
}
