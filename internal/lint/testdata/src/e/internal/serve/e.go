// lockorder cases, serve side: plan execution must not run while the
// flight-map mutex is held, including under a deferred unlock.
package serve

import (
	"sync"

	"repro/internal/hybrid"
	"repro/internal/mal"
)

type Server struct {
	fmu    sync.Mutex
	flight map[string]int
}

func bad(sv *Server, t *mal.Template) {
	sv.fmu.Lock()
	sv.flight["q"] = 1
	_, _ = t.Run(nil) // want `Template\.Run while holding sv\.fmu \(flight map\)`
	sv.fmu.Unlock()
}

func badDeferred(sv *Server, h *hybrid.Engine) {
	sv.fmu.Lock()
	defer sv.fmu.Unlock()
	h.Devices() // want `engine call Devices while holding sv\.fmu \(flight map\)`
}

func good(sv *Server, t *mal.Template) {
	sv.fmu.Lock()
	sv.flight["q"] = 1
	sv.fmu.Unlock()
	_, _ = t.Run(nil) // lock dropped before execution
}

// goodClosureScopedLock: a deferred unlock inside a closure ends that
// closure's critical section; execution after the closure is clean.
func goodClosureScopedLock(sv *Server, t *mal.Template) {
	busy := func() bool {
		sv.fmu.Lock()
		defer sv.fmu.Unlock()
		return len(sv.flight) > 0
	}
	for busy() {
	}
	_, _ = t.Run(nil) // outside any critical section
}

func badInsideClosure(sv *Server, t *mal.Template) {
	go func() {
		sv.fmu.Lock()
		defer sv.fmu.Unlock()
		_, _ = t.Run(nil) // want `Template\.Run while holding sv\.fmu \(flight map\)`
	}()
}

func (sv *Server) Execute(name string) (int, error)    { return 0, nil }
func (sv *Server) ExecuteCtx(name string) (int, error) { return 0, nil }

// ShardedServer mirrors the shard coordinator: cmu guards the compiled-plan
// map and must never be held across plan execution.
type ShardedServer struct {
	cmu     sync.Mutex
	entries map[string]int
	coord   *Server
}

func badShardCompileUnderLock(ss *ShardedServer, plan interface{}) {
	ss.cmu.Lock()
	defer ss.cmu.Unlock()
	if _, ok := ss.entries["q"]; ok {
		return
	}
	_, _ = mal.RunQuery(nil, plan) // want `RunQuery while holding ss\.cmu \(shard coordinator\)`
	ss.entries["q"] = 1
}

func badShardDelegateUnderLock(ss *ShardedServer) {
	ss.cmu.Lock()
	_, _ = ss.coord.ExecuteCtx("q") // want `Server\.ExecuteCtx while holding ss\.cmu \(shard coordinator\)`
	ss.cmu.Unlock()
}

func badShardMergeUnderLock(ss *ShardedServer, sp *mal.ShardPlan) {
	ss.cmu.Lock()
	defer ss.cmu.Unlock()
	_, _ = sp.Merge(nil) // want `ShardPlan\.Merge while holding ss\.cmu \(shard coordinator\)`
}

// goodShardRegisterThenRun is the required shape: consult the map under cmu,
// drop the lock, run cold, relock only to store the entry.
func goodShardRegisterThenRun(ss *ShardedServer, plan interface{}, sp *mal.ShardPlan) {
	ss.cmu.Lock()
	_, ok := ss.entries["q"]
	ss.cmu.Unlock()
	if ok {
		return
	}
	_, _ = mal.RunQuery(nil, plan)
	_, _ = sp.Merge(nil)
	ss.cmu.Lock()
	ss.entries["q"] = 1
	ss.cmu.Unlock()
}
