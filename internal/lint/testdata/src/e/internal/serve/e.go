// lockorder cases, serve side: plan execution must not run while the
// flight-map mutex is held, including under a deferred unlock.
package serve

import (
	"sync"

	"repro/internal/hybrid"
	"repro/internal/mal"
)

type Server struct {
	fmu    sync.Mutex
	flight map[string]int
}

func bad(sv *Server, t *mal.Template) {
	sv.fmu.Lock()
	sv.flight["q"] = 1
	_, _ = t.Run(nil) // want `Template\.Run while holding sv\.fmu \(flight map\)`
	sv.fmu.Unlock()
}

func badDeferred(sv *Server, h *hybrid.Engine) {
	sv.fmu.Lock()
	defer sv.fmu.Unlock()
	h.Devices() // want `engine call Devices while holding sv\.fmu \(flight map\)`
}

func good(sv *Server, t *mal.Template) {
	sv.fmu.Lock()
	sv.flight["q"] = 1
	sv.fmu.Unlock()
	_, _ = t.Run(nil) // lock dropped before execution
}
