// lockorder cases, plan-cache side: Template.Run must not execute while
// PlanCache.mu is held.
package mal

import "sync"

type Template struct{}

func (t *Template) Run(p map[string]float64) (int, error) { return 0, nil }

type PlanCache struct {
	mu   sync.Mutex
	tpls map[string]*Template
}

func bad(c *PlanCache, key string) {
	c.mu.Lock()
	t := c.tpls[key]
	_, _ = t.Run(nil) // want `Template\.Run while holding c\.mu \(plan cache\)`
	c.mu.Unlock()
}

func good(c *PlanCache, key string) {
	c.mu.Lock()
	t := c.tpls[key]
	c.mu.Unlock()
	_, _ = t.Run(nil) // lock dropped before execution
}
