// Package sync is a skeletal stand-in so lockorder testdata typechecks
// without the real standard library (the test loader resolves every import
// from testdata/src).
package sync

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
