// Package mal mirrors the real plan-layer shapes lockorder recognises.
package mal

type Template struct{}

func (t *Template) Run(p map[string]float64) (int, error)      { return 0, nil }
func (t *Template) RunOn(o, p map[string]float64) (int, error) { return 0, nil }

type ShardPlan struct{}

func (sp *ShardPlan) Merge(gathered map[string]int) (int, error) { return 0, nil }

func RunQuery(eng, plan interface{}) (int, error) { return 0, nil }
