// Package core mirrors the real device-engine shape for analyzer tests.
package core

type Engine struct{}

func (e *Engine) Select(lo, hi int) int  { return 0 }
func (e *Engine) Project(a, b int) int   { return 0 }
func (e *Engine) SetSpillBudget(b int64) {}
func (e *Engine) Device() int            { return 0 }
func (e *Engine) SpillStats() (int, int) { return 0, 0 }
func (e *Engine) Finish() error          { return nil }
