// Package ops mirrors the real operator interface shape for analyzer
// tests: dispatchthrough derives the operator method set from it.
package ops

type Operators interface {
	Select(lo, hi int) int
	Project(a, b int) int
}
