// Package hybrid mirrors the real hybrid-engine shape for analyzer tests:
// Dev.Eng is the field dispatchthrough guards.
package hybrid

import (
	"repro/internal/core"
	"repro/internal/ops"
)

type Dev struct {
	Eng   *core.Engine
	Label string
}

type Engine struct{ devs []*Dev }

func (e *Engine) On(label string) ops.Operators { return nil }
func (e *Engine) Devices() []*Dev               { return e.devs }
