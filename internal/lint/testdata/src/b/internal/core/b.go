// enqueuecheck cases: error-returning calls used as bare statements (or
// behind go/defer) are flagged; explicit acknowledgement and error-free
// enqueues are not.
package core

func launch() error { return nil }

type Q struct{}

func (q *Q) EnqueueWrite() error  { return nil }
func (q *Q) EnqueueMarker() int   { return 0 }
func (q *Q) Submit() (int, error) { return 0, nil }

func f(q *Q) {
	launch()          // want `statement call of launch drops its error result`
	q.EnqueueWrite()  // want `statement call of q\.EnqueueWrite drops its error result`
	q.Submit()        // want `statement call of q\.Submit drops its error result`
	go launch()       // want `go statement of launch drops its error result`
	defer launch()    // want `defer statement of launch drops its error result`
	q.EnqueueMarker() // event-only enqueue: errors latch in the queue
	_ = launch()      // explicitly acknowledged
	if err := launch(); err != nil {
		_ = err
	}
}
