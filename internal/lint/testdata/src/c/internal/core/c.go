// releasepair cases: a scratch acquisition must be released on every path,
// transfer ownership out, or carry a //lint:transfer marker.
package core

type Buf struct{}

func (b *Buf) Release() error { return nil }

type MM struct{ bufs []*Buf }

func (m *MM) AllocScratch(n int) (*Buf, error) { return nil, nil }
func (m *MM) ReleaseScratch(b *Buf)            {}
func (m *MM) BindValues(res int, b *Buf)       {}

var errFail error

func use(b *Buf) {}

func leaky(m *MM) error {
	b, err := m.AllocScratch(8) // want `b acquired from AllocScratch is never released or transferred`
	if err != nil {
		return err
	}
	use(b)
	return nil
}

func earlyReturn(m *MM, fail bool) error {
	b, err := m.AllocScratch(8)
	if err != nil {
		return err // the acquisition's own failure guard: nothing to release
	}
	use(b)
	if fail {
		return errFail // want `return leaks b \(acquired from AllocScratch`
	}
	m.ReleaseScratch(b)
	return nil
}

func released(m *MM) error {
	b, err := m.AllocScratch(8)
	if err != nil {
		return err
	}
	use(b)
	m.ReleaseScratch(b)
	return nil
}

func releasedOnEveryPath(m *MM, fail bool) error {
	b, err := m.AllocScratch(8)
	if err != nil {
		return err
	}
	use(b)
	if fail {
		m.ReleaseScratch(b)
		return errFail // released just above, on this path
	}
	m.ReleaseScratch(b)
	return nil
}

func deferred(m *MM, fail bool) error {
	b, err := m.AllocScratch(8)
	if err != nil {
		return err
	}
	defer m.ReleaseScratch(b)
	use(b)
	if fail {
		return errFail // covered by the defer
	}
	return nil
}

func transfers(m *MM) *Buf {
	b, _ := m.AllocScratch(8)
	return b // ownership moves to the caller
}

func stores(m *MM) {
	b, _ := m.AllocScratch(8)
	m.bufs = append(m.bufs, b) // escapes into m
}

func binds(m *MM) {
	b, _ := m.AllocScratch(8)
	m.BindValues(1, b) // Bind* hands the buffer to a result
}

func marked(m *MM) {
	//lint:transfer the engine's completion callback releases it
	b, _ := m.AllocScratch(8)
	use(b)
}
