// dispatchthrough scope: packages outside internal/mal and internal/serve
// may reach Dev.Eng directly (hybrid itself must).
package other

import "repro/internal/hybrid"

func fine(d *hybrid.Dev) {
	d.Eng.Select(0, 1)
}
