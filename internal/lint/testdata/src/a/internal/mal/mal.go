// dispatchthrough cases: direct Dev.Eng operator calls in an internal/mal
// package are flagged; dispatch through Engine.On and non-operator
// maintenance methods are not.
package mal

import "repro/internal/hybrid"

func bad(d *hybrid.Dev) {
	d.Eng.Select(0, 1)  // want `operator Select called directly on Dev\.Eng`
	d.Eng.Project(1, 2) // want `operator Project called directly on Dev\.Eng`
}

func good(e *hybrid.Engine, d *hybrid.Dev) {
	e.On("CPU").Select(0, 1) // dispatched: placement sees it
	d.Eng.SetSpillBudget(8)  // maintenance method, not an operator
	_ = d.Eng.Device()       // likewise
}
