package lint

import (
	"go/ast"
	"go/types"
)

// DispatchThrough flags operator calls in internal/mal and internal/serve
// that reach a device engine directly through hybrid's Dev.Eng field
// instead of dispatching through hybrid.Engine.On. Direct calls bypass
// placement accounting, the fallback chain and the per-device views the
// hybrid engine maintains, so only the hybrid package itself may make
// them. Non-operator maintenance methods (Device, SetSpillBudget,
// SpillStats, Finish, ...) are deliberately allowed: configs.go and the
// spill plumbing use them legitimately.
var DispatchThrough = &Analyzer{
	Name: "dispatchthrough",
	Doc:  "flag direct Dev.Eng operator calls that bypass hybrid.Engine.On in internal/mal and internal/serve",
	Run:  runDispatchThrough,
}

func runDispatchThrough(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg, "internal/mal", "internal/serve") {
		return nil
	}
	operators := operatorMethodSet(pass.Pkg)
	if operators == nil {
		return nil // package graph has no ops.Operators; nothing to check
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			outer, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			inner, ok := outer.X.(*ast.SelectorExpr)
			if !ok || inner.Sel.Name != "Eng" {
				return true
			}
			if !isNamed(pass.Info.TypeOf(inner.X), "internal/hybrid", "Dev") {
				return true
			}
			if !operators[outer.Sel.Name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"operator %s called directly on Dev.Eng; dispatch through hybrid.Engine.On so placement and fallback accounting see it",
				outer.Sel.Name)
			return true
		})
	}
	return nil
}

// operatorMethodSet walks the import graph of pkg for the internal/ops
// package and returns the method names of its Operators interface.
func operatorMethodSet(pkg *types.Package) map[string]bool {
	ops := findImport(pkg, "internal/ops")
	if ops == nil {
		return nil
	}
	obj := ops.Scope().Lookup("Operators")
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	m := make(map[string]bool, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		m[iface.Method(i).Name()] = true
	}
	return m
}

// findImport breadth-first searches the import graph of pkg for a package
// whose path ends in suffix.
func findImport(pkg *types.Package, suffix string) *types.Package {
	seen := map[*types.Package]bool{pkg: true}
	queue := []*types.Package{pkg}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if pathHasSuffix(p, suffix) {
			return p
		}
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	return nil
}
