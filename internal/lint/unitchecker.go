package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Main is the entry point of cmd/ocelotlint. It speaks the `go vet
// -vettool` wire protocol directly (the x/tools unitchecker is not a
// dependency of this module):
//
//   - `ocelotlint -V=full` prints a version line whose buildID is the
//     content hash of the executable, so the go command can cache vet
//     results against the tool build.
//   - `ocelotlint -flags` prints the tool's flags as JSON so the go
//     command knows which it may forward.
//   - `ocelotlint [flags] <file>.cfg` — the real run: the go command
//     hands over a JSON config describing one package (files, import
//     map, export data locations) and expects diagnostics on stderr and
//     a nonzero exit when there are any.
//   - `ocelotlint [flags] <packages>` — convenience standalone mode:
//     re-executes itself through `go vet -vettool` so the go command
//     does the loading.
func Main() {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON")
	version := fs.String("V", "", "print version and exit")

	_ = fs.Parse(os.Args[1:])

	if *version != "" {
		// The go command requires the last field to be
		// "buildID=<contentID>"; hashing the executable itself keys the
		// vet result cache to this exact tool build.
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}
	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range All() {
			out = append(out, jsonFlag{a.Name, true, a.Doc})
		}
		data, _ := json.Marshal(out)
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		run := All()[:0:0]
		for _, a := range All() {
			if *enabled[a.Name] {
				run = append(run, a)
			}
		}
		os.Exit(runUnit(args[0], run))
	}

	// Standalone invocation: let the go command drive the loading.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	os.Exit(0)
}

func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// vetConfig mirrors the JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func runUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: bad config: %v\n", cfgPath, err)
		return 2
	}
	// The go command expects the facts file regardless; this tool has no
	// cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the go command's vendored view (ImportMap)
	// and read export data from the exact files it built (PackageFile).
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compImp.Import(path)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	diags := 0
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info,
			report: func(pos token.Pos, msg string) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(pos), msg)
				diags++
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "%s: analyzer %s: %v\n", cfg.ImportPath, a.Name, err)
			return 2
		}
	}
	if diags > 0 {
		return 1
	}
	return 0
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
