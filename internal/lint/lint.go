// Package lint is a dependency-free go/analysis-style framework plus the
// four repo-specific analyzers behind cmd/ocelotlint. The x/tools analysis
// machinery is deliberately not used: the module has no external
// dependencies, so the tiny subset the analyzers need — an Analyzer
// descriptor, a per-package Pass with type information, and the `go vet
// -vettool` unitchecker wire protocol — is implemented here on the standard
// library only (go/ast, go/types, go/importer).
//
// Analyzers:
//
//   - dispatchthrough: internal/mal and internal/serve must route operator
//     calls through hybrid.Engine.On, never directly through Dev.Eng.
//   - enqueuecheck: internal/core and internal/monet must not drop errors
//     from calls that return one (kernel launches, enqueues).
//   - releasepair: scratch/BAT acquisitions in internal/core need a release
//     on every path, an ownership transfer, or a `//lint:transfer` marker.
//   - lockorder: internal/serve and the mal plan cache must not call into
//     plan execution while holding the plan-cache or flight-map locks.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. The subset of the x/tools analysis
// API the unitchecker and tests need: a name for -<name>=false flags and
// diagnostics, a doc string, and a per-package entry point.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// report collects a diagnostic; installed by the driver.
	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// All lists every analyzer ocelotlint runs, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DispatchThrough,
		EnqueueCheck,
		ReleasePair,
		LockOrder,
	}
}

// pathHasSuffix reports whether the import path of pkg ends in one of the
// given suffixes (segment-aligned). Matching by suffix instead of equality
// makes the analyzers work unchanged on the real module path and on the
// fake testdata import paths (e.g. both "repro/internal/mal" and
// "a/internal/mal" are internal/mal packages).
func pathHasSuffix(pkg *types.Package, suffixes ...string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	for _, s := range suffixes {
		if p == s || strings.HasSuffix(p, "/"+s) {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to the *types.Named beneath t,
// or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (through pointers/aliases) is the named type
// `name` declared in a package whose path ends in pkgSuffix.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == name && pathHasSuffix(n.Obj().Pkg(), pkgSuffix)
}

// typeHasError reports whether t is or contains (as a tuple member) the
// built-in error type.
func typeHasError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if typeHasError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
