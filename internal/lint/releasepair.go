package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReleasePair flags scratch acquisitions in internal/core that can leak: a
// buffer obtained from AllocScratch or spine must, within the acquiring
// function, either be released on every path (a call whose name mentions
// release/free taking the value, or a .Release() on it), transfer
// ownership out (returned, stored into a field/slice/map, appended into an
// escaping slice), or carry an explicit `//lint:transfer` marker comment
// on or immediately above the acquisition. It also flags early returns
// that exit between the acquisition and its release without the value
// escaping through them.
//
// The check is flow-insensitive by design; the marker comment is the
// documented escape hatch for ownership transfers the heuristics cannot
// see (see DESIGN.md, "Static analysis").
var ReleasePair = &Analyzer{
	Name: "releasepair",
	Doc:  "flag scratch/BAT acquisitions in internal/core without a release on every path or an ownership transfer",
	Run:  runReleasePair,
}

// acquireFuncs names the callees whose result the analyzer tracks.
var acquireFuncs = map[string]bool{"AllocScratch": true, "spine": true}

func runReleasePair(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg, "internal/core") {
		return nil
	}
	for _, f := range pass.Files {
		markers := transferMarkers(pass.Fset, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkReleasePairs(pass, fn, markers)
		}
	}
	return nil
}

// transferMarkers returns the set of line numbers carrying a
// `//lint:transfer` comment.
func transferMarkers(fset *token.FileSet, f *ast.File) map[int]bool {
	m := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), "//lint:transfer") {
				m[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return m
}

type acquireSite struct {
	obj  types.Object // the acquired variable
	name string       // its source name
	call string       // the acquiring callee, for diagnostics
	pos  token.Pos
}

func checkReleasePairs(pass *Pass, fn *ast.FuncDecl, markers map[int]bool) {
	var acquires []acquireSite
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeName(call)
		if !acquireFuncs[callee] {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		acquires = append(acquires, acquireSite{obj: obj, name: id.Name, call: callee, pos: as.Pos()})
		return true
	})
	if len(acquires) == 0 {
		return
	}

	blocks := collectBlocks(fn.Body)
	for _, acq := range acquires {
		line := pass.Fset.Position(acq.pos).Line
		if markers[line] || markers[line-1] {
			continue
		}
		releases, transferred, returns, firstUse := scanAcquire(pass, fn, acq)
		if transferred {
			continue
		}
		if len(releases) == 0 {
			pass.Reportf(acq.pos,
				"%s acquired from %s is never released or transferred; release it on every path or mark the acquisition //lint:transfer",
				acq.name, acq.call)
			continue
		}
		lastRelease := releases[len(releases)-1]
		for _, ret := range returns {
			if ret.pos <= acq.pos || ret.pos >= lastRelease || ret.mentions {
				continue
			}
			// The acquire's own failure guard: the return fires before the
			// value is ever used, i.e. only on the path where the
			// acquisition itself failed and there is nothing to release.
			if firstUse != token.NoPos && ret.pos < firstUse {
				continue
			}
			// A release on the path: some release site lies in the
			// innermost block enclosing that release AND that block also
			// spans the return — i.e. the return is preceded by a release
			// in straight-line scope.
			if releasedOnPath(blocks, releases, ret.pos) {
				continue
			}
			pass.Reportf(ret.pos,
				"return leaks %s (acquired from %s at line %d): no release on this path and the value does not escape through the return",
				acq.name, acq.call, line)
		}
	}
}

// calleeName extracts the bare called-function name of call.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

type retSite struct {
	pos      token.Pos
	mentions bool
}

// scanAcquire walks fn once for everything the per-acquire verdicts need:
// release positions, whether ownership transfers out, every return
// statement, and the first use of the value after the acquisition.
func scanAcquire(pass *Pass, fn *ast.FuncDecl, acq acquireSite) (releases []token.Pos, transferred bool, returns []retSite, firstUse token.Pos) {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == acq.obj {
				found = true
			}
			return !found
		})
		return found
	}
	// Assignment targets are writes, not uses: `out, err = alloc()` in a
	// second branch must not count as the first use when deciding whether
	// an early return is the acquisition's own failure guard.
	assigned := map[token.Pos]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					assigned[id.Pos()] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.Ident:
			if pass.Info.ObjectOf(st) == acq.obj && st.Pos() > acq.pos && !assigned[st.Pos()] &&
				(firstUse == token.NoPos || st.Pos() < firstUse) {
				firstUse = st.Pos()
			}
		case *ast.CallExpr:
			name := calleeName(st)
			low := strings.ToLower(name)
			if strings.Contains(low, "release") || strings.Contains(low, "free") {
				// v.Release() or anything(v, ...) whose name says release.
				if sel, ok := st.Fun.(*ast.SelectorExpr); ok && usesObj(sel.X) {
					releases = append(releases, st.Pos())
					return true
				}
				for _, a := range st.Args {
					if usesObj(a) {
						releases = append(releases, st.Pos())
						return true
					}
				}
			}
			// Bind* calls (BindValues, BindBitmap) hand the buffer to a
			// result BAT whose lifecycle the memory manager now owns — the
			// repo's ownership-transfer convention.
			if strings.HasPrefix(name, "Bind") {
				for _, a := range st.Args {
					if usesObj(a) {
						transferred = true
					}
				}
			}
		case *ast.ReturnStmt:
			r := retSite{pos: st.Pos()}
			for _, e := range st.Results {
				if usesObj(e) {
					r.mentions = true
					transferred = true
				}
			}
			returns = append(returns, r)
		case *ast.AssignStmt:
			// Ownership escapes when the value lands in a field, slice
			// element, map entry or dereference (including via append whose
			// result is stored there).
			for i, rhs := range st.Rhs {
				if !usesObj(rhs) {
					continue
				}
				lhs := st.Lhs[0]
				if len(st.Lhs) == len(st.Rhs) {
					lhs = st.Lhs[i]
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					transferred = true
				}
			}
		}
		return true
	})
	// Keep releases sorted by position; ast.Inspect visits in source order
	// within a file, which is already positional for one function.
	return releases, transferred, returns, firstUse
}

// blockSpan is the source interval of one *ast.BlockStmt.
type blockSpan struct{ lo, hi token.Pos }

func collectBlocks(body *ast.BlockStmt) []blockSpan {
	var spans []blockSpan
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			spans = append(spans, blockSpan{b.Pos(), b.End()})
		}
		return true
	})
	return spans
}

// releasedOnPath reports whether some release site dominates retPos in the
// straight-line sense: the innermost block containing the release also
// contains the return, and the release comes first.
func releasedOnPath(blocks []blockSpan, releases []token.Pos, retPos token.Pos) bool {
	for _, rel := range releases {
		if rel >= retPos {
			continue
		}
		inner := blockSpan{}
		for _, b := range blocks {
			if b.lo <= rel && rel <= b.hi {
				if inner.lo == token.NoPos || (b.lo >= inner.lo && b.hi <= inner.hi) {
					inner = b
				}
			}
		}
		if inner.lo != token.NoPos && inner.lo <= retPos && retPos <= inner.hi {
			return true
		}
	}
	return false
}
